"""Loop-IR construction and normalization (paper §6)."""

import pytest

from repro.comprehension.build import (
    BuildError,
    build_array_comp,
    find_array_comp,
)
from repro.comprehension.loopir import LoopNest, SVClause
from repro.lang.parser import parse_expr


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


class TestFindArrayComp:
    def test_bare_application(self):
        name, bounds, pairs = find_array_comp(
            parse_expr("array (1,3) [ i := 0 | i <- [1..3] ]")
        )
        assert name == ""

    def test_letrec_binding(self):
        name, _, _ = find_array_comp(
            parse_expr("letrec* v = array (1,3) [ i := 0 | i <- [1..3] ] in v")
        )
        assert name == "v"

    def test_rejects_non_array(self):
        with pytest.raises(BuildError):
            find_array_comp(parse_expr("1 + 2"))


class TestNormalization:
    def test_unit_loop_already_normalized(self):
        comp = comp_of("array (1,10) [ i := 0 | i <- [1..10] ]")
        loop = comp.clauses[0].loops[0]
        assert loop.info.count == 10
        assert loop.step == 1
        # i = 1 + (t - 1) = t.
        assert comp.clauses[0].subscripts[0].coeff(loop.info.var) == 1
        assert comp.clauses[0].subscripts[0].const == 0

    def test_offset_start(self):
        comp = comp_of("array (2,11) [ i := 0 | i <- [2..11] ]")
        clause = comp.clauses[0]
        loop = clause.loops[0]
        assert loop.info.count == 10
        # i = 2 + (t-1) = 1 + t.
        assert clause.subscripts[0].const == 1

    def test_strided_generator(self):
        comp = comp_of("array (1,20) [ i := 0 | i <- [2,4..20] ]")
        clause = comp.clauses[0]
        loop = clause.loops[0]
        assert loop.step == 2
        assert loop.info.count == 10
        # i = 2 + 2*(t-1) = 2t.
        assert clause.subscripts[0].coeff(loop.info.var) == 2
        assert clause.subscripts[0].const == 0

    def test_backward_generator(self):
        comp = comp_of("array (1,10) [ i := 0 | i <- [10,9..1] ]")
        clause = comp.clauses[0]
        loop = clause.loops[0]
        assert loop.step == -1
        assert loop.info.count == 10
        # i = 10 - (t-1) = 11 - t.
        assert clause.subscripts[0].coeff(loop.info.var) == -1
        assert clause.subscripts[0].const == 11

    def test_symbolic_bounds_unknown_count(self):
        comp = comp_of("array (1,n) [ i := 0 | i <- [1..n] ]")
        assert comp.clauses[0].loops[0].info.count is None
        assert comp.bounds is None

    def test_params_make_counts_known(self):
        comp = comp_of("array (1,n) [ i := 0 | i <- [1..n] ]", {"n": 42})
        assert comp.clauses[0].loops[0].info.count == 42
        assert comp.bounds.size() == 42

    def test_triangular_nest_inner_count_unknown(self):
        comp = comp_of(
            "array (1,100) [ 10*i + j := 0 | i <- [1..9], j <- [1..i] ]"
        )
        clause = comp.clauses[0]
        assert clause.loops[0].info.count == 9
        assert clause.loops[1].info.count is None
        # The subscript is still affine in normalized indices.
        assert clause.subscripts is not None

    def test_zero_stride_rejected(self):
        with pytest.raises(BuildError):
            comp_of("array (1,10) [ i := 0 | i <- [1,1..10] ]")

    def test_non_sequence_generator_rejected(self):
        with pytest.raises(BuildError):
            comp_of("array (1,3) [ i := 0 | i <- xs ]")

    def test_empty_range_count_zero(self):
        comp = comp_of("array (1,3) [ i := 0 | i <- [3..1] ]")
        assert comp.clauses[0].loops[0].info.count == 0


class TestStructure:
    def test_wavefront_shape(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 5})
        assert len(comp.roots) == 3
        assert all(isinstance(r, LoopNest) for r in comp.roots)
        assert len(comp.clauses) == 3
        assert comp.rank == 2
        interior = comp.clauses[2]
        assert [loop.var for loop in interior.loops] == ["i", "j"]
        assert len(interior.reads) == 3

    def test_nested_comprehension_shape(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        # One outer loop entity containing three clauses.
        assert len(comp.roots) == 1
        outer = comp.roots[0]
        assert isinstance(outer, LoopNest)
        assert len(outer.children) == 3
        assert all(isinstance(c, SVClause) for c in outer.children)

    def test_clause_numbering_in_source_order(self):
        from repro.kernels import EXAMPLE2

        comp = comp_of(EXAMPLE2)
        assert [c.index for c in comp.clauses] == [0, 1, 2]
        assert comp.clause(1).label == "clause 1"

    def test_guards_attached(self):
        comp = comp_of(
            "array (1,10) [ i := 0 | i <- [1..10], i > 3, i < 8 ]"
        )
        assert len(comp.clauses[0].guards) == 2

    def test_if_at_list_level_becomes_guards(self):
        src = """
        array (1,10)
          [* if i > 5 then [ i := 1 ] else [ i := 0 ] | i <- [1..10] *]
        """
        comp = comp_of(src)
        assert len(comp.clauses) == 2
        assert len(comp.clauses[0].guards) == 1
        assert len(comp.clauses[1].guards) == 1

    def test_lets_attached(self):
        comp = comp_of(
            "array (1,5) [ i := v + 1 | i <- [1..5], let v = i * 2 ]"
        )
        clause = comp.clauses[0]
        assert [b.name for b in clause.lets] == ["v"]

    def test_where_in_nested_body(self):
        src = """
        array (1,10)
          [* ([ 2*i := v ] ++ [ 2*i-1 := v + 1 ] where v = i * 7)
           | i <- [1..5] *]
        """
        comp = comp_of(src)
        assert len(comp.clauses) == 2
        assert all(c.lets for c in comp.clauses)

    def test_reads_extracted_from_guards_and_lets(self):
        src = """
        array (1,5)
          [ i := v | i <- [1..5], u!i > 0, let v = w!(i+1) ]
        """
        comp = comp_of(src)
        arrays = {r.array for r in comp.clauses[0].reads}
        assert arrays == {"u", "w"}

    def test_non_affine_write_subscript(self):
        comp = comp_of("array (1,10) [* [ i*i := 1 ] | i <- [1..3] *]")
        assert comp.clauses[0].subscripts is None

    def test_non_affine_read_subscript(self):
        comp = comp_of(
            "array (1,10) [* [ i := a!(i*i) ] | i <- [1..3] *]"
        )
        read = comp.clauses[0].reads[0]
        assert read.subscripts is None
        assert comp.clauses[0].has_opaque_reads("a")

    def test_rank_mismatch_rejected(self):
        with pytest.raises(BuildError):
            comp_of("array ((1,1),(3,3)) [ i := 0 | i <- [1..3] ]")

    def test_iter_loops(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 5})
        assert len(list(comp.iter_loops())) == 4
