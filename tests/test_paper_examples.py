"""Every worked example of the paper, end to end (experiment index E1-E13).

These tests are the compile-time half of EXPERIMENTS.md: each asserts
the exact dependence graphs, schedules, and code strategies the paper
derives for its examples.
"""

import pytest

from repro import (
    FlatArray,
    analyze,
    compile_array,
    compile_array_inplace,
    evaluate,
)
from repro.runtime import incremental
from repro.runtime.thunks import STATS as THUNK_STATS
from repro import kernels


def edges_of(report):
    return {
        (e.src.index + 1, e.dst.index + 1, e.direction, e.kind)
        for e in report.edges
    }


class TestE1SingleLoop:
    """§5 example 1: stride-3 clauses in one loop."""

    def test_dependence_graph(self):
        report = analyze(kernels.STRIDE3_SCHEMATIC)
        assert edges_of(report) == {
            (1, 2, ("<",), "flow"),
            (1, 3, ("=",), "flow"),
        }

    def test_schedule(self):
        report = analyze(kernels.STRIDE3_SCHEMATIC)
        assert report.schedule.ok
        assert report.schedule.loop_directions() == {"i": ["forward"]}
        order = report.schedule.clause_order()
        assert order.index(0) < order.index(2)

    def test_collision_free_and_full(self):
        report = analyze(kernels.STRIDE3_SCHEMATIC)
        assert report.collision.status == "none"
        assert report.empties.status == "none"


class TestE2NestedLoops:
    """§5 example 2: 2->1 (=,>), 1->2 (<,>), 2->3 (<)."""

    def test_dependence_graph(self):
        report = analyze(kernels.EXAMPLE2)
        assert edges_of(report) == {
            (2, 1, ("=", ">"), "flow"),
            (1, 2, ("<", ">"), "flow"),
            (2, 3, ("<",), "flow"),
        }

    def test_schedule_i_forward_j_backward(self):
        report = analyze(kernels.EXAMPLE2)
        assert report.schedule.ok
        directions = report.schedule.loop_directions()
        assert directions["i"] == ["forward"]
        assert directions["j"] == ["backward"]


class TestE3Wavefront:
    """§3's wavefront recurrence compiled thunklessly."""

    def test_end_to_end(self):
        n = 12
        compiled = compile_array(kernels.WAVEFRONT, params={"n": n})
        assert compiled.report.strategy == "thunkless"
        THUNK_STATS.reset()
        out = compiled({"n": n})
        assert THUNK_STATS.created == 0
        want = kernels.ref_wavefront(n)
        assert out.to_list() == [
            want[i][j] for i in range(1, n + 1) for j in range(1, n + 1)
        ]

    def test_matches_lazy_oracle(self):
        compiled = compile_array(kernels.WAVEFRONT, params={"n": 6})
        oracle = evaluate(kernels.WAVEFRONT, bindings={"n": 6}, deep=False)
        got = compiled({"n": 6})
        assert got.to_list() == [
            oracle.at(s) for s in oracle.bounds.range()
        ]


class TestE4AcyclicPasses:
    """§8.1.2 acyclic A/B/C: 3 clauses collapse into 2 passes."""

    def test_two_passes(self):
        report = analyze(kernels.ABC_ACYCLIC)
        assert report.schedule.ok
        assert len(report.schedule.loop_directions()["i"]) == 2

    def test_values(self):
        compiled = compile_array(kernels.ABC_ACYCLIC)
        oracle = evaluate(kernels.ABC_ACYCLIC, deep=False)
        assert compiled({}).to_list() == [
            oracle.at(s) for s in oracle.bounds.range()
        ]


class TestE5CyclicFallback:
    """§8.1.2 cyclic A->B (<), B->A (>): thunks are unavoidable."""

    def test_edges(self):
        report = analyze(kernels.CYCLIC_FALLBACK)
        assert (1, 2, ("<",), "flow") in edges_of(report)
        assert (2, 1, (">",), "flow") in edges_of(report)

    def test_fallback_detected(self):
        report = analyze(kernels.CYCLIC_FALLBACK)
        assert not report.schedule.ok

    def test_thunked_code_still_correct(self):
        compiled = compile_array(kernels.CYCLIC_FALLBACK)
        assert compiled.report.strategy == "thunked"
        oracle = evaluate(kernels.CYCLIC_FALLBACK, deep=False)
        THUNK_STATS.reset()
        got = compiled({})
        assert THUNK_STATS.created > 0  # really used thunks
        assert got.to_list() == [
            oracle.at(s) for s in oracle.bounds.range()
        ]


class TestE6LinpackSwap:
    """§9 row swap: (=) anti cycle broken by one hoisted temp."""

    PARAMS = {"m": 6, "n": 8, "i": 2, "k": 5}

    def test_anti_cycle(self):
        from repro.comprehension.build import build_array_comp, find_array_comp
        from repro.core.dependence import anti_edges
        from repro.lang.parser import parse_expr

        name, b, p = find_array_comp(parse_expr(kernels.SWAP))
        comp = build_array_comp(name, b, p, self.PARAMS)
        dirs = {(e.src.index + 1, e.dst.index + 1, e.direction)
                for e in anti_edges(comp, "a")}
        assert dirs == {(1, 2, ("=",)), (2, 1, ("=",))}

    def test_copies_match_hand_code(self):
        compiled = compile_array_inplace(kernels.SWAP, "a",
                                         params=self.PARAMS)
        base = [float(v) for v in range(48)]
        arr = FlatArray.from_list(((1, 1), (6, 8)), list(base))
        incremental.STATS.reset()
        out = compiled({"a": arr})
        assert incremental.STATS.cells_copied == 8  # n temps, like Fortran
        assert out.to_list() == kernels.ref_swap(base, 6, 8, 2, 5)


class TestE7Jacobi:
    """§9 Jacobi: scalar + row-vector temporaries, factor-n savings."""

    def test_temporary_structure(self):
        compiled = compile_array_inplace(kernels.JACOBI, "u",
                                         params={"m": 12})
        plan = compiled.report.inplace_plan
        assert plan.mode == "split"
        levels = sorted(s.level for s in plan.snapshots)
        assert levels == [0, 1]  # row ring and scalar ring

    def test_copy_count_scales_linearly_per_row(self):
        for m in (8, 16):
            compiled = compile_array_inplace(kernels.JACOBI, "u",
                                             params={"m": m})
            cells = kernels.mesh_cells(m)
            arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
            incremental.STATS.reset()
            out = compiled({"u": arr})
            assert out.to_list() == kernels.ref_jacobi(cells, m)
            interior = (m - 2) ** 2
            # 2 buffered cells per interior element; naive copying per
            # outer iteration would cost (m-2) * m * m.
            assert incremental.STATS.cells_copied == 2 * interior
            naive_per_outer = (m - 2) * m * m
            assert incremental.STATS.cells_copied * (m // 2) < naive_per_outer


class TestE8SorWavefront:
    """§9 Gauss-Seidel / SOR / Livermore K23: no thunks, no copies."""

    def test_four_self_edges(self):
        from repro.comprehension.build import build_array_comp, find_array_comp
        from repro.core.dependence import anti_edges, flow_edges
        from repro.lang.parser import parse_expr

        name, b, p = find_array_comp(parse_expr(kernels.GAUSS_SEIDEL))
        comp = build_array_comp(name, b, p, {"m": 10})
        flow = {e.direction for e in flow_edges(comp)}
        anti = {e.direction for e in anti_edges(comp, "u")}
        assert flow == {("<", "="), ("=", "<")}
        assert anti == {("<", "="), ("=", "<")}

    def test_zero_cost_schedule(self):
        m = 10
        compiled = compile_array_inplace(kernels.SOR, "u", params={"m": m})
        directions = compiled.report.schedule.loop_directions()
        assert directions == {"i": ["forward"], "j": ["forward"]}
        cells = kernels.mesh_cells(m)
        arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
        incremental.STATS.reset()
        THUNK_STATS.reset()
        out = compiled({"u": arr, "omega": 1.4})
        assert incremental.STATS.cells_copied == 0
        assert THUNK_STATS.created == 0
        assert out.to_list() == pytest.approx(
            kernels.ref_sor(cells, m, 1.4)
        )


class TestE9Collisions:
    """§7: collision analysis elides or compiles runtime checks."""

    def test_paper_kernels_all_proved_clean(self):
        for src, params in [
            (kernels.STRIDE3_SCHEMATIC, None),
            (kernels.WAVEFRONT, {"n": 10}),
            (kernels.EXAMPLE2, None),
            (kernels.SQUARES, {"n": 10}),
        ]:
            report = analyze(src, params)
            assert report.collision.status == "none", src

    def test_certain_collision_is_compile_error(self):
        from repro import CompileError

        with pytest.raises(CompileError):
            compile_array(
                "letrec a = array (1,10) [* [ 5 := i ] | i <- [1..3] *] in a"
            )


class TestE13LetrecStar:
    """§2: letrec* strict-context semantics."""

    def test_strictification(self):
        out = evaluate(kernels.WAVEFRONT, bindings={"n": 4}, deep=False)
        from repro.runtime.strict import StrictArray

        assert isinstance(out, StrictArray)

    def test_hidden_recursion_is_bottom(self):
        from repro.runtime.errors import BlackHoleError

        src = """
        letrec* v = array (1,2) [ 1 := v!2, 2 := v!1 ]
        in 0
        """
        with pytest.raises(BlackHoleError):
            evaluate(src)
