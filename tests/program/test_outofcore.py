"""Out-of-core streaming execution vs the in-memory path and oracle.

``ooc=True`` streams a program's iterate/converge sweeps through
``numpy.memmap``-backed tiles.  The contract is *bit-identity* with
the in-memory double-buffer path — and hence with the lazy oracle —
including the exact sweep count of a convergence loop, while the
resident working set stays bounded by the tile, not the mesh.
"""

import os

import pytest

import repro
from repro.codegen.emit import CodegenOptions
from repro.kernels import PROGRAM_JACOBI, PROGRAM_JACOBI_STEPS, PROGRAM_SOR
from repro.obs.trace import (
    refresh_runtime_tracing,
    reset_runtime_counters,
    runtime_counters,
)
from repro.program.compile import compile_program

JACOBI_PARAMS = {"m": 12, "tol": 1e-3}
STEPS_PARAMS = {"m": 12, "k": 7}


@pytest.fixture
def traced(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    refresh_runtime_tracing()
    reset_runtime_counters()
    yield
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    refresh_runtime_tracing()


def identical(got, want):
    assert got.bounds == want.bounds
    for subscript in got.bounds.range():
        assert got.at(subscript) == want.at(subscript)


class TestOocBitIdentity:
    @pytest.mark.parametrize("tile", [1, 3, 5, 100, None])
    def test_jacobi_converge(self, tile):
        options = CodegenOptions(tile=tile) if tile else None
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=options, ooc=True)
        # The convergence loop itself streamed — no fallback for it.
        assert not [f for f in ooc.report.fallbacks
                    if f.startswith("ooc 'main'")]
        plain = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS)
        identical(ooc({}), plain({}))

    def test_jacobi_matches_oracle(self):
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=4), ooc=True)
        oracle = repro.run_program(PROGRAM_JACOBI,
                                   bindings=dict(JACOBI_PARAMS))
        identical(ooc({}), oracle)

    @pytest.mark.parametrize("tile", [1, 4, 100])
    def test_jacobi_fixed_steps(self, tile):
        ooc = compile_program(PROGRAM_JACOBI_STEPS, params=STEPS_PARAMS,
                              options=CodegenOptions(tile=tile), ooc=True)
        plain = compile_program(PROGRAM_JACOBI_STEPS, params=STEPS_PARAMS)
        identical(ooc({}), plain({}))

    def test_sweep_counts_identical(self, traced):
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=4), ooc=True)
        ooc({})
        streamed = runtime_counters().get("iterate.sweeps.double")
        assert streamed is not None
        reset_runtime_counters()
        plain = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS)
        plain({})
        in_memory = runtime_counters().get("iterate.sweeps.double")
        assert streamed == in_memory


class TestResidentBound:
    def test_resident_bytes_bounded_by_tile(self, traced):
        # m=12 rows of 12 doubles; 2-row tiles with a 1-row halo each
        # side keep (window + destination) well under the full mesh.
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=2), ooc=True)
        ooc({})
        counters = runtime_counters()
        resident = counters.get("ooc.bytes.resident")
        mesh_bytes = 12 * 12 * 8
        assert resident is not None
        # window (tile + two halo rows) + destination tile, in bytes.
        assert resident <= (4 + 2) * 12 * 8
        assert resident < mesh_bytes
        assert counters.get("ooc.tiles", 0) >= 6
        assert counters.get("tile.halo.cells", 0) > 0

    def test_spill_files_cleaned_up(self, tmp_path, monkeypatch):
        spill = tmp_path / "spill"
        monkeypatch.setenv("REPRO_OOC_DIR", str(spill))
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=3), ooc=True)
        ooc({})
        assert os.listdir(spill) == []


class TestOocFallbacks:
    def test_sor_inplace_sweeps_fall_back_with_reason(self):
        # SOR's sweep mutates one buffer; its tiles cannot stream
        # independently, so ooc falls back — loudly and correctly.
        ooc = compile_program(PROGRAM_SOR,
                              params={"m": 8, "k": 5, "omega": 1.25},
                              ooc=True)
        reasons = [f for f in ooc.report.fallbacks
                   if f.startswith("ooc 'main'")]
        assert reasons
        assert "double-buffer" in reasons[0]
        plain = compile_program(PROGRAM_SOR,
                                params={"m": 8, "k": 5, "omega": 1.25})
        identical(ooc({}), plain({}))

    def test_one_shot_bindings_report_nothing_to_stream(self):
        src = "a = array (1,4) [ i := 2.0 | i <- [1..4] ]; main = a"
        ooc = compile_program(src, ooc=True)
        reasons = [f for f in ooc.report.fallbacks
                   if f.startswith("ooc ")]
        assert reasons
        assert any("nothing to stream" in r or "executes once" in r
                   for r in reasons)

    def test_single_definition_ooc_is_a_loud_error(self):
        with pytest.raises(repro.CompileError):
            repro.compile("array (1,4) [ i := 2.0 | i <- [1..4] ]",
                          ooc=True)


class TestOocComposesWithOverrides:
    def test_tol_override_still_streams(self):
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=4), ooc=True)
        plain = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS)
        identical(ooc({}, tol=1e-2), plain({}, tol=1e-2))

    def test_steps_override_still_streams(self):
        ooc = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS,
                              options=CodegenOptions(tile=4), ooc=True)
        plain = compile_program(PROGRAM_JACOBI, params=JACOBI_PARAMS)
        identical(ooc({}, steps=9), plain({}, steps=9))
