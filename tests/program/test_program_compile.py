"""Unit tests for the whole-program compiler's decisions.

Scheduling, cycle diagnostics, cross-binding storage reuse (and every
reason it gets rejected), the convergence-loop driver, the facade
dispatch, and the service integration.
"""

import pickle

import pytest

import repro
from repro import CompileError
from repro.codegen.support import ALLOC_STATS
from repro.core.liveness import (
    ProgramCycleError,
    dependence_graph,
    last_uses,
    topo_order,
)
from repro.kernels import (
    PROGRAM_CATALOG,
    PROGRAM_JACOBI_STEPS,
    PROGRAM_PIPELINE,
)
from repro.lang import parse_program
from repro.program import (
    CompiledProgram,
    ProgramError,
    as_program,
    compile_program,
)
from repro.service import fingerprint_program


def allocations(program, params):
    ALLOC_STATS.reset()
    program(dict(params))
    return ALLOC_STATS.arrays_allocated


# ----------------------------------------------------------------------
# Scheduling and liveness.


class TestScheduling:
    def test_out_of_order_source(self):
        # Bindings written backwards still schedule and run: the list
        # is letrec-like, order-free.
        src = """
        main = c;
        c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
        b = array (1,n) [ i := 1.0 * i | i <- [1..n] ]
        """
        prog = compile_program(src, params={"n": 5})
        # b fuses into c (distance zero, sole consumer), so the
        # scheduled order is the post-fusion one.
        assert prog.report.order == ["c", "main"]
        assert prog({"n": 5}).to_list() == [2.0, 3.0, 4.0, 5.0, 6.0]
        # The pre-fusion topo order is still checkable with fuse off.
        unfused = compile_program(src, params={"n": 5}, fuse=False)
        assert unfused.report.order == ["b", "c", "main"]
        assert unfused({"n": 5}).to_list() == prog({"n": 5}).to_list()

    def test_cycle_diagnostic_names_members(self):
        src = """
        a = array (1,n) [ i := b!i | i <- [1..n] ];
        b = array (1,n) [ i := a!i | i <- [1..n] ];
        main = a
        """
        with pytest.raises(CompileError) as err:
            compile_program(src, params={"n": 3})
        message = str(err.value)
        assert "cycle" in message
        assert "a" in message and "b" in message

    def test_self_reference_is_not_a_cycle(self):
        # A recursive array is a flow dependence inside one unit.
        src = """
        x = letrec x = array (1,n)
              ([ 1 := 1.0 ] ++ [ i := x!(i-1) + 1.0 | i <- [2..n] ])
            in x;
        main = x
        """
        prog = compile_program(src, params={"n": 4})
        assert prog({"n": 4}).to_list() == [1.0, 2.0, 3.0, 4.0]

    def test_duplicate_names_rejected(self):
        src = "a = array (1,3) [ i := 1 | i <- [1..3] ]; a = a"
        with pytest.raises(CompileError, match="duplicate"):
            compile_program(src)

    def test_dead_bindings_pruned_with_note(self):
        src = """
        dead = array (1,n) [ i := 1.0 | i <- [1..n] ];
        main = array (1,n) [ i := 2.0 | i <- [1..n] ]
        """
        prog = compile_program(src, params={"n": 3})
        assert prog.report.order == ["main"]
        assert any("dead" in note for note in prog.report.notes)
        assert prog.report.binding("dead").kind == "skipped"

    def test_result_keyword(self):
        src = """
        b = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
        c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ]
        """
        prog = compile_program(src, params={"n": 3}, result="b")
        assert prog({"n": 3}).to_list() == [1.0, 2.0, 3.0]
        with pytest.raises(CompileError, match="not defined"):
            compile_program(src, params={"n": 3}, result="zz")

    def test_trailing_semicolon_accepted(self):
        binds = parse_program(
            "a = array (1,3) [ i := i | i <- [1..3] ];\nmain = a;\n"
        )
        assert [b.name for b in binds] == ["a", "main"]


class TestLivenessUnits:
    def test_last_uses(self):
        binds = parse_program(
            "b = array (1,3) [ i := 1 | i <- [1..3] ];"
            "c = array (1,3) [ i := b!i | i <- [1..3] ];"
            "main = c"
        )
        graph = dependence_graph(binds)
        order = topo_order(binds, graph)
        assert order == ["b", "c", "main"]
        assert last_uses(order, graph) == {"b": "c", "c": "main"}

    def test_topo_raises_programcycleerror(self):
        binds = parse_program("a = b; b = a")
        with pytest.raises(ProgramCycleError) as err:
            topo_order(binds, dependence_graph(binds))
        assert err.value.cycle


# ----------------------------------------------------------------------
# Cross-binding storage reuse.


class TestReuse:
    def test_pipeline_chain_one_allocation(self):
        spec = PROGRAM_CATALOG["program_pipeline"]
        # Default path: b fuses into c (distance zero, sole
        # consumer); x is a letrec recurrence and cannot fuse, so it
        # takes c's dead buffer through §9 reuse as before.
        prog = compile_program(spec["source"], params=spec["params"])
        edges = {(e.consumer, e.producer) for e in prog.report.reuse_edges}
        assert edges == {("x", "c")}
        assert [c.members for c in prog.report.fused] == [["b"]]
        assert allocations(prog, spec["params"]) == 1
        # With fusion off, the pre-fusion reuse chain is intact.
        prog = compile_program(spec["source"], params=spec["params"],
                               fuse=False)
        edges = {(e.consumer, e.producer) for e in prog.report.reuse_edges}
        assert edges == {("c", "b"), ("x", "c")}
        assert all(e.via == "inplace" for e in prog.report.reuse_edges)
        assert len(prog.report.elided) >= 2
        assert allocations(prog, spec["params"]) == 1

    def test_producer_read_later_blocks_reuse(self):
        src = """
        b = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
        c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
        main = array (1,n) [ i := b!i + c!i | i <- [1..n] ]
        """
        params = {"n": 6}
        # With fusion on this diamond collapses entirely (c fuses
        # into main, which leaves b with one consumer, which fuses
        # too) — the reuse-blocking behaviour is a fuse=False fact.
        prog = compile_program(src, params=params, fuse=False)
        # c cannot take b's buffer (b is read again by main) ...
        assert ("c", "b") not in {
            (e.consumer, e.producer) for e in prog.report.reuse_edges
        }
        assert any(
            "c<-b" in line and "still read" in line
            for line in prog.report.fallbacks
        )
        got = prog(dict(params))
        oracle = repro.run_program(src, bindings=dict(params))
        assert got.to_list() == oracle.to_list()
        fused = compile_program(src, params=params)
        assert [c.members for c in fused.report.fused] == [["c", "b"]]
        assert fused(dict(params)).to_list() == got.to_list()

    def test_alias_protects_both_ends(self):
        src = """
        b = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
        keep = b;
        c = array (1,n) [ i := b!i + 1.0 | i <- [1..n] ];
        main = array (1,n) [ i := c!i + keep!i | i <- [1..n] ]
        """
        params = {"n": 5}
        prog = compile_program(src, params=params)
        producers = {e.producer for e in prog.report.reuse_edges}
        assert "b" not in producers and "keep" not in producers
        got = prog(dict(params))
        oracle = repro.run_program(src, bindings=dict(params))
        assert got.to_list() == oracle.to_list()

    def test_external_input_never_reused(self):
        src = """
        c = array (1,n) [ i := ext!i + 1.0 | i <- [1..n] ];
        main = c
        """
        params = {"n": 4}
        prog = compile_program(src, params=params)
        assert prog.report.reuse_edges == []
        ext = repro.FlatArray(repro.Bounds(1, 4), [1.0, 2.0, 3.0, 4.0])
        out = prog({"n": 4, "ext": ext})
        assert out.to_list() == [2.0, 3.0, 4.0, 5.0]
        # the input array was not touched
        assert ext.to_list() == [1.0, 2.0, 3.0, 4.0]

    def test_bounds_mismatch_blocks_reuse(self):
        src = """
        b = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
        main = array (1,n-1) [ i := b!i + b!(i+1) | i <- [1..n-1] ]
        """
        prog = compile_program(src, params={"n": 5})
        assert prog.report.reuse_edges == []
        assert any(
            "bounds not statically equal" in line
            for line in prog.report.fallbacks
        )

    def test_bigupd_dead_old_runs_in_place(self):
        spec = PROGRAM_CATALOG["program_swap"]
        prog = compile_program(spec["source"], params=spec["params"])
        assert [(e.consumer, e.producer, e.via)
                for e in prog.report.reuse_edges] == [("a1", "a0", "bigupd")]
        assert allocations(prog, spec["params"]) == 1

    def test_bigupd_live_old_copies_first(self):
        src = """
        a0 = array (1,n) [ i := 1.0 * i | i <- [1..n] ];
        a1 = bigupd a0 [ 1 := a0!n ];
        main = array (1,n) [ i := a1!i + a0!i | i <- [1..n] ]
        """
        params = {"n": 4}
        prog = compile_program(src, params=params)
        assert any(
            "bigupd" in line and "copies" in line
            for line in prog.report.fallbacks
        )
        got = prog(dict(params))
        oracle = repro.run_program(src, bindings=dict(params))
        assert got.to_list() == oracle.to_list()


# ----------------------------------------------------------------------
# The convergence-loop driver.


class TestIterate:
    def test_sor_runs_in_place_zero_steady_state_allocs(self):
        spec = PROGRAM_CATALOG["program_sor"]
        prog = compile_program(spec["source"], params=spec["params"])
        info = prog.report.binding("main")
        assert info.kind == "iterate"
        assert "mode inplace" in info.detail
        assert allocations(prog, spec["params"]) == 1  # just the seed

    def test_jacobi_double_buffers_with_recycling(self):
        spec = PROGRAM_CATALOG["program_jacobi"]
        prog = compile_program(spec["source"], params=spec["params"])
        info = prog.report.binding("main")
        assert "mode double" in info.detail
        assert any("recycling on" in line for line in prog.report.iterate)
        # seed + one sweep output, everything else recycled
        assert allocations(prog, spec["params"]) == 2

    def test_steps_and_tol_overrides(self):
        spec = PROGRAM_CATALOG["program_jacobi_steps"]
        prog = compile_program(spec["source"], params=spec["params"])
        params = dict(spec["params"])
        three = prog(params, steps=3)
        oracle = repro.run_program(
            PROGRAM_JACOBI_STEPS, bindings=dict(params, k=3)
        )
        assert three.to_list() == oracle.to_list()
        tight = prog(params, tol=1e-7)
        loose = prog(params, tol=1e-1)
        assert tight.to_list() != loose.to_list()

    def test_missing_control_binding_is_loud(self):
        # Forgetting to pass tol= must not leak a raw NameError.
        spec = PROGRAM_CATALOG["program_jacobi"]
        prog = compile_program(spec["source"], params={"m": 6})
        with pytest.raises(ProgramError, match="tol") as err:
            prog({"m": 6})
        assert "override" in str(err.value)

    def test_override_without_iterate_is_loud(self):
        prog = compile_program(
            "main = array (1,n) [ i := 1.0 | i <- [1..n] ]",
            params={"n": 3},
        )
        with pytest.raises(ProgramError, match="no iterate"):
            prog({"n": 3}, steps=2)

    def test_diverging_converge_fails_loudly(self):
        src = """
        u0 = array (1,1) [ 1 := 0.0 ];
        step u = array (1,1) [ 1 := u!1 + 1.0 ];
        main = converge step u0 tol
        """
        prog = compile_program(src, params={"tol": 1e-9})
        with pytest.raises(ProgramError, match="no fixpoint"):
            prog({"tol": 1e-9})

    def test_malformed_iterate_is_a_compile_error(self):
        src = """
        u0 = array (1,n) [ i := 1.0 | i <- [1..n] ];
        step u = array (1,n) [ i := u!i | i <- [1..n] ];
        main = iterate step u0
        """
        with pytest.raises(CompileError, match="iterate"):
            compile_program(src, params={"n": 3})

    def test_step_must_be_program_function(self):
        src = """
        u0 = array (1,n) [ i := 1.0 | i <- [1..n] ];
        main = iterate missing u0 3
        """
        with pytest.raises(CompileError, match="missing"):
            compile_program(src, params={"n": 3})

    def test_external_seed_is_copied_not_mutated(self):
        src = """
        sweep u = letrec a = array (1,n)
           ([ 1 := u!1 ] ++ [ n := u!n ] ++
            [ i := 0.5 * (a!(i-1) + u!(i+1)) | i <- [2..n-1] ])
          in a;
        main = iterate sweep seed k
        """
        params = {"n": 5, "k": 3}
        prog = compile_program(src, params=params)
        seed = repro.FlatArray(repro.Bounds(1, 5),
                               [4.0, 0.0, 0.0, 0.0, 8.0])
        before = seed.to_list()
        out = prog(dict(params, seed=seed))
        assert seed.to_list() == before
        oracle = repro.run_program(src, bindings=dict(params, seed=seed))
        assert out.to_list() == oracle.to_list()


# ----------------------------------------------------------------------
# Facade dispatch, service, and pickling.


class TestFacade:
    def test_compile_auto_dispatches_programs(self):
        spec = PROGRAM_CATALOG["program_pipeline"]
        prog = repro.compile(spec["source"], params=spec["params"])
        assert isinstance(prog, CompiledProgram)

    def test_explicit_strategy_on_program_is_actionable(self):
        with pytest.raises(CompileError) as err:
            repro.compile(PROGRAM_PIPELINE, strategy="inplace",
                          old_array="b")
        message = str(err.value)
        assert "compile_program" in message
        assert "'b'" in message  # names the bindings

    def test_as_program_rejects_expressions(self):
        assert as_program("1 + 2") is None
        assert as_program(
            "letrec* a = array (1,3) [ i := i | i <- [1..3] ] in a"
        ) is None
        binds = as_program("a = 1; main = a")
        assert [b.name for b in binds] == ["a", "main"]

    def test_service_caches_programs(self):
        service = repro.CompileService()
        spec = PROGRAM_CATALOG["program_sor"]
        first = service.compile_program(spec["source"],
                                        params=spec["params"])
        second = service.compile_program(spec["source"],
                                         params=spec["params"])
        assert first is second
        assert service.stats()["requests"]["misses"] == 1

    def test_cache_kwarg_routes_through_service(self):
        service = repro.CompileService()
        spec = PROGRAM_CATALOG["program_sor"]
        first = compile_program(spec["source"], params=spec["params"],
                                cache=service)
        second = repro.compile(spec["source"], params=spec["params"],
                               cache=service)
        assert first is second

    def test_fingerprint_alpha_invariant(self):
        src = "b = array (1,n) [ i := 1.0 * i | i <- [1..n] ]; main = b"
        renamed = src.replace("b", "zz")
        assert fingerprint_program(src) == fingerprint_program(renamed)
        # renaming a *free* name changes meaning, hence the key
        other = src.replace("n", "m")
        assert fingerprint_program(src) != fingerprint_program(other)
        assert (fingerprint_program(src, params={"n": 3})
                != fingerprint_program(src, params={"n": 4}))

    def test_disk_tier_roundtrip(self, tmp_path):
        spec = PROGRAM_CATALOG["program_pipeline"]
        first = compile_program(spec["source"], params=spec["params"],
                                cache=str(tmp_path))
        fresh = repro.CompileService(disk_dir=str(tmp_path))
        second = fresh.compile_program(spec["source"],
                                       params=spec["params"])
        assert second is not first  # came back through pickle
        assert (second(dict(spec["params"])).to_list()
                == first(dict(spec["params"])).to_list())

    def test_pickle_roundtrip(self):
        spec = PROGRAM_CATALOG["program_jacobi"]
        prog = compile_program(spec["source"], params=spec["params"])
        clone = pickle.loads(pickle.dumps(prog))
        assert (clone(dict(spec["params"])).to_list()
                == prog(dict(spec["params"])).to_list())
        assert clone.report.summary() == prog.report.summary()

    def test_summary_names_every_decision(self):
        spec = PROGRAM_CATALOG["program_pipeline"]
        prog = compile_program(spec["source"], params=spec["params"])
        summary = prog.report.summary()
        assert "topo order: c -> x -> main" in summary
        assert "fused: b -> c" in summary
        assert "reuse: x overwrites c" in summary
        assert "elided" in summary
        unfused = compile_program(spec["source"], params=spec["params"],
                                  fuse=False)
        summary = unfused.report.summary()
        assert "topo order: b -> c -> x -> main" in summary
        assert "reuse: c overwrites b" in summary
        assert "elided" in summary

    def test_missing_input_is_loud(self):
        prog = compile_program(
            "main = array (1,n) [ i := ext!i | i <- [1..n] ]",
            params={"n": 3},
        )
        with pytest.raises(Exception, match="ext"):
            prog({"n": 3})
