"""Differential tests: compiled programs vs the lazy oracle.

The correctness bar of the program compiler is bit-identity with
:func:`repro.run_program` on the same source — every catalog kernel
and a family of randomized multi-binding programs must agree
element-wise, whatever reuse/iterate decisions the compiler made.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.kernels import PROGRAM_CATALOG
from repro.program import compile_program


def run_both(src, params):
    compiled = compile_program(src, params=params)
    got = compiled(dict(params))
    oracle = repro.run_program(src, bindings=dict(params))
    return got, oracle


def assert_same(got, oracle):
    assert got.bounds == oracle.bounds
    # Element-wise through the oracle's own accessor, so laziness in
    # the reference value is forced one subscript at a time.
    for subscript in got.bounds.range():
        assert got.at(subscript) == oracle.at(subscript), subscript


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(PROGRAM_CATALOG))
    def test_bit_identical(self, name):
        spec = PROGRAM_CATALOG[name]
        got, oracle = run_both(spec["source"], spec["params"])
        assert_same(got, oracle)

    def test_jacobi_converge_and_steps_agree_with_oracle(self):
        # The convergence loop shares its metric and sweep cap with
        # the interpreter builtin, so even the *number* of sweeps
        # matches — spot-check by tightening the tolerance.
        spec = PROGRAM_CATALOG["program_jacobi"]
        params = dict(spec["params"], tol=1e-6)
        got, oracle = run_both(spec["source"], params)
        assert_same(got, oracle)

    def test_sor_more_sweeps(self):
        spec = PROGRAM_CATALOG["program_sor"]
        params = dict(spec["params"], k=23)
        got, oracle = run_both(spec["source"], params)
        assert_same(got, oracle)


# ----------------------------------------------------------------------
# Randomized chain programs: 2-4 array bindings, each stage a map, a
# shifted guarded stencil, or a forward recurrence over the previous
# stage.  The last stage is the result; earlier stages die at their
# single read, so the compiler reuses buffers along the chain — the
# oracle never does, and the values must still agree exactly.


STAGE_KINDS = ("map", "stencil", "recurrence")


@st.composite
def chain_program(draw):
    n = draw(st.integers(3, 9))
    depth = draw(st.integers(1, 3))
    stages = [draw(st.sampled_from(STAGE_KINDS)) for _ in range(depth)]
    coeffs = [draw(st.integers(1, 4)) for _ in range(depth)]
    return n, stages, coeffs


def render_chain(n, stages, coeffs):
    lines = [f"s0 = array (1,{n}) [ i := 1.0 * i * i | i <- [1..{n}] ]"]
    for k, (kind, coeff) in enumerate(zip(stages, coeffs), start=1):
        prev, name = f"s{k - 1}", f"s{k}"
        if kind == "map":
            expr = (f"array (1,{n}) [ i := {prev}!i + {coeff}.0 "
                    f"| i <- [1..{n}] ]")
        elif kind == "stencil":
            expr = (
                f"array (1,{n}) [ i := (if i > 1 then {prev}!(i-1) "
                f"else 0.0) + {coeff}.0 * {prev}!i | i <- [1..{n}] ]"
            )
        else:  # recurrence
            expr = (
                f"letrec {name} = array (1,{n})\n"
                f"  ([ 1 := {prev}!1 ] ++\n"
                f"   [ i := {prev}!i - 0.{coeff} * {name}!(i-1) "
                f"| i <- [2..{n}] ])\nin {name}"
            )
        lines.append(f"{name} = {expr}")
    lines.append(f"main = s{len(stages)}")
    return ";\n".join(lines)


class TestRandomChains:
    @given(chain_program())
    @settings(max_examples=40, deadline=None)
    def test_chain_matches_oracle(self, chain):
        n, stages, coeffs = chain
        src = render_chain(n, stages, coeffs)
        got, oracle = run_both(src, {})
        assert_same(got, oracle)

    @given(chain_program())
    @settings(max_examples=15, deadline=None)
    def test_chain_reuses_along_the_way(self, chain):
        # Whenever the compiler *did* claim a reuse edge, the producer
        # really is dead: re-running from a fresh environment still
        # matches the oracle (a stale-buffer bug would surface here).
        n, stages, coeffs = chain
        src = render_chain(n, stages, coeffs)
        compiled = compile_program(src)
        first = compiled({}).to_list()
        second = compiled({}).to_list()
        assert first == second
        for edge in compiled.report.reuse_edges:
            assert edge.producer != compiled.report.result
