"""Cross-binding loop fusion: legality, reporting, and correctness.

The fusion pass may only fire when every consumer read of the producer
is provably distance zero after loop alignment and the producer is
dead afterwards; every rejection must surface a reason string in
``ProgramReport.fallbacks`` (and through ``explain`` under the
``fuse`` area).  The correctness bar is the usual one: fused output is
bit-identical to the unfused compile and to the lazy oracle.
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.codegen.support import ALLOC_STATS
from repro.obs.explain import explain_report
from repro.program import compile_program


def fuse_fallbacks(report):
    return [f for f in report.fallbacks if f.startswith("fuse")]


def assert_same(got, oracle):
    assert got.bounds == oracle.bounds
    for subscript in got.bounds.range():
        assert got.at(subscript) == oracle.at(subscript), subscript


# ----------------------------------------------------------------------
# Acceptance: distance-zero chains collapse into one nest.


class TestAccept:
    SRC = """
    a = array (1,20) [ i := 1.0 * i * i | i <- [1..20] ];
    b = array (1,20) [ i := a!i * 2.0 | i <- [1..20] ];
    main = array (1,20) [ i := b!i + 1.0 | i <- [1..20] ]
    """

    def test_chain_fuses_and_matches_oracle(self):
        compiled = compile_program(self.SRC)
        report = compiled.report
        assert len(report.fused) == 1
        chain = report.fused[0]
        assert chain.host == "main"
        assert chain.members == ["a", "b"]
        assert chain.cells == 40 and chain.reads == 2
        # Fused-away bindings are pruned from the step list and
        # recorded as kind 'fused'.
        assert [s.name for s in compiled.steps] == ["main"]
        assert report.binding("a").kind == "fused"
        assert report.binding("b").kind == "fused"
        assert_same(compiled({}), repro.run_program(self.SRC))

    def test_fused_allocates_strictly_fewer_arrays(self):
        # Stage bounds differ, so the unfused path cannot equalize the
        # count through §9 buffer reuse — fusion's elision is visible
        # as a strictly smaller arrays_allocated.
        src = """
        a = array (2,9) [ i := 1.0 * i | i <- [2..9] ];
        main = array (1,8) [ i := a!(i+1) * 3.0 | i <- [1..8] ]
        """
        fused = compile_program(src)
        unfused = compile_program(src, fuse=False)
        assert fused.report.fused
        ALLOC_STATS.reset()
        fused({})
        n_fused = ALLOC_STATS.arrays_allocated
        ALLOC_STATS.reset()
        unfused({})
        n_unfused = ALLOC_STATS.arrays_allocated
        assert n_fused < n_unfused
        assert n_fused == 1

    def test_offset_alignment_fuses_shifted_reads(self):
        # The consumer's origin is shifted one cell: the producer is
        # read at i+1 over a reindexed but identical iteration space,
        # so alignment maps p -> c+1 and fusion is still exact.
        src = """
        a = array (2,9) [ i := 1.0 * i | i <- [2..9] ];
        main = array (1,8) [ i := a!(i+1) * 3.0 | i <- [1..8] ]
        """
        compiled = compile_program(src)
        assert len(compiled.report.fused) == 1
        assert_same(compiled({}), repro.run_program(src))

    def test_diamond_collapses_once_branches_fuse(self):
        # a feeds b and c (two consumers: rejected at first), but once
        # b and c fuse into main, a has one consumer left and the
        # whole diamond collapses.
        src = """
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        b = array (1,8) [ i := a!i + 1.0 | i <- [1..8] ];
        c = array (1,8) [ i := a!i * 2.0 | i <- [1..8] ];
        main = array (1,8) [ i := b!i + c!i | i <- [1..8] ]
        """
        compiled = compile_program(src)
        report = compiled.report
        assert len(report.fused) == 1
        assert set(report.fused[0].members) == {"a", "b", "c"}
        assert not fuse_fallbacks(report)
        assert_same(compiled({}), repro.run_program(src))

    def test_fuse_false_disables_the_pass(self):
        compiled = compile_program(self.SRC, fuse=False)
        assert compiled.report.fused == []
        assert [s.name for s in compiled.steps] == ["a", "b", "main"]
        assert_same(compiled({}), repro.run_program(self.SRC))


# ----------------------------------------------------------------------
# Rejections: each illegal shape surfaces its reason.


class TestReject:
    def reasons(self, src):
        report = compile_program(src).report
        assert report.fused == []
        lines = fuse_fallbacks(report)
        assert lines, "rejection must not be silent"
        return "\n".join(lines)

    def test_loop_carried_read(self):
        reasons = self.reasons("""
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        main = array (1,8)
          [ i := (if i > 1 then a!(i-1) else 0.0) + a!i | i <- [1..8] ]
        """)
        assert "loop-carried" in reasons
        assert "direction vectors" in reasons

    def test_multi_consumer_producer(self):
        reasons = self.reasons("""
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        b = bigupd a [ 3 := 9.0 ];
        main = array (1,8) [ i := a!i + b!i | i <- [1..8] ]
        """)
        assert "2 live consumers" in reasons
        assert "must materialize" in reasons

    def test_live_producer_result_alias(self):
        # b is (an alias of) the program result: it must materialize,
        # and the rejection names the consumer's non-array kind.
        src = """
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        b = array (1,8) [ i := a!i + 1.0 | i <- [1..8] ];
        main = b
        """
        report = compile_program(src).report
        # a -> b still fuses; b itself survives as the result buffer.
        assert len(report.fused) == 1
        assert report.fused[0].host == "b"
        reasons = "\n".join(fuse_fallbacks(report))
        assert "not a plain array comprehension" in reasons

    def test_bigupd_producer(self):
        reasons = self.reasons("""
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        b = bigupd a [ 3 := 9.0 ];
        main = array (1,8) [ i := b!i + 1.0 | i <- [1..8] ]
        """)
        assert "bigupd" in reasons
        assert "cannot be inlined" in reasons

    def test_guarded_producer(self):
        reasons = self.reasons("""
        a = array (1,8) [ i := 1.0 * i | i <- [1..8], i > 0 ];
        main = array (1,8) [ i := a!i + 1.0 | i <- [1..8] ]
        """)
        assert "guard mismatch" in reasons

    def test_iteration_space_mismatch(self):
        reasons = self.reasons("""
        a = array (1,9) [ i := 1.0 * i | i <- [1..9] ];
        main = array (1,8) [ i := a!i + 1.0 | i <- [1..8] ]
        """)
        assert "iteration spaces differ" in reasons

    def test_multi_clause_producer(self):
        reasons = self.reasons("""
        a = array (1,8)
          ([ 1 := 0.0 ] ++ [ i := 1.0 * i | i <- [2..8] ]);
        main = array (1,8) [ i := a!i + 1.0 | i <- [1..8] ]
        """)
        assert "2 clauses" in reasons

    def test_rejected_chain_still_matches_oracle(self):
        src = """
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        main = array (1,8)
          [ i := (if i > 1 then a!(i-1) else 0.0) + a!i | i <- [1..8] ]
        """
        compiled = compile_program(src)
        assert_same(compiled({}), repro.run_program(src))


# ----------------------------------------------------------------------
# explain: fusion decisions appear under the 'fuse' area.


class TestExplain:
    def test_accepted_chain_is_a_fuse_decision(self):
        compiled = compile_program(TestAccept.SRC)
        decisions = explain_report(compiled.report).by_area("fuse")
        assert any(d.verdict == "accepted" and "main" in d.subject
                   for d in decisions)

    def test_rejections_route_to_the_fuse_area(self):
        src = """
        a = array (1,8) [ i := 1.0 * i | i <- [1..8] ];
        main = array (1,8)
          [ i := (if i > 1 then a!(i-1) else 0.0) + a!i | i <- [1..8] ]
        """
        decisions = explain_report(compile_program(src).report)
        rejected = [d for d in decisions.by_area("fuse")
                    if d.verdict == "rejected"]
        assert rejected and "loop-carried" in rejected[0].reason
        # Nothing fusion-related leaks into the reuse area.
        assert not any("fuse" in d.reason for d in
                       decisions.by_area("reuse"))


# ----------------------------------------------------------------------
# Randomized differential oracle: fused vs unfused vs lazy reference.


STAGE_KINDS = ("map", "scale", "clamp", "shift")


@st.composite
def fusable_chain(draw):
    n = draw(st.integers(4, 12))
    depth = draw(st.integers(1, 4))
    stages = [draw(st.sampled_from(STAGE_KINDS)) for _ in range(depth)]
    coeffs = [draw(st.integers(1, 5)) for _ in range(depth)]
    return n, stages, coeffs


def render_chain(n, stages, coeffs):
    lines = [f"s0 = array (1,{n}) [ i := 1.0 * i * i | i <- [1..{n}] ]"]
    for k, (kind, coeff) in enumerate(zip(stages, coeffs), start=1):
        prev, name = f"s{k - 1}", f"s{k}"
        if kind == "map":
            body = f"{prev}!i + {coeff}.0"
        elif kind == "scale":
            body = f"{prev}!i * {coeff}.0"
        elif kind == "clamp":
            body = (f"if {prev}!i > {coeff}.0 then {coeff}.0 "
                    f"else {prev}!i")
        else:  # shift: reindexed origin, still distance zero aligned
            body = f"{prev}!i - 0.{coeff}"
        lines.append(
            f"{name} = array (1,{n}) [ i := {body} | i <- [1..{n}] ]"
        )
    lines.append(f"main = s{len(stages)}")
    return ";\n".join(lines)


class TestRandomizedDifferential:
    @given(fusable_chain())
    @settings(max_examples=30, deadline=None)
    def test_fused_equals_unfused_equals_oracle(self, chain):
        n, stages, coeffs = chain
        src = render_chain(n, stages, coeffs)
        fused = compile_program(src)({})
        unfused = compile_program(src, fuse=False)({})
        oracle = repro.run_program(src)
        assert_same(fused, unfused)
        assert_same(fused, oracle)

    @given(fusable_chain())
    @settings(max_examples=10, deadline=None)
    def test_fused_never_allocates_more(self, chain):
        n, stages, coeffs = chain
        src = render_chain(n, stages, coeffs)
        fused = compile_program(src)
        unfused = compile_program(src, fuse=False)
        ALLOC_STATS.reset()
        fused({})
        n_fused = ALLOC_STATS.arrays_allocated
        ALLOC_STATS.reset()
        unfused({})
        n_unfused = ALLOC_STATS.arrays_allocated
        # §9 reuse can equalize the counts on same-bounds chains, but
        # fusion must never allocate *more*; a fully collapsed chain
        # runs in exactly one buffer.
        assert n_fused <= n_unfused
        if fused.report.fused and len(fused.steps) == 1:
            assert n_fused == 1


# ----------------------------------------------------------------------
# Service integration: fuse= reaches the fingerprint.


class TestServiceKeying:
    def test_fuse_flag_changes_the_program_fingerprint(self):
        from repro.service.fingerprint import fingerprint_program

        src = TestAccept.SRC
        assert fingerprint_program(src, fuse=True) != \
            fingerprint_program(src, fuse=False)

    def test_service_keeps_fused_and_unfused_plans_apart(self):
        from repro.service.service import CompileService

        service = CompileService()
        fused = service.compile_program(TestAccept.SRC)
        unfused = service.compile_program(TestAccept.SRC, fuse=False)
        assert fused is not unfused
        assert fused is service.compile_program(TestAccept.SRC)
        assert unfused is service.compile_program(TestAccept.SRC,
                                                  fuse=False)
        assert fused.report.fused and not unfused.report.fused
