"""Compilation of the §9 ``bigupd`` surface construct."""

import pytest

from repro import CompileError, FlatArray, compile_bigupd, evaluate
from repro.runtime import incremental


class TestSwap:
    def test_paper_form_optimal(self):
        # Shared j loop: the hoist point exists; one temp per column.
        swap = """
        bigupd a [* [ (i,j) := a!(k,j), (k,j) := a!(i,j) ]
                  | j <- [1..n] *]
        """
        params = {"n": 6, "i": 1, "k": 3}
        compiled = compile_bigupd(swap, params=params)
        assert compiled.report.strategy == "inplace"
        base = [float(v) for v in range(24)]
        arr = FlatArray.from_list(((1, 1), (4, 6)), list(base))
        incremental.STATS.reset()
        out = compiled({"a": arr})
        want = list(base)
        for j in range(6):
            want[j], want[12 + j] = base[12 + j], base[j]
        assert out.to_list() == want
        assert incremental.STATS.cells_copied == 6

    def test_split_loops_fall_back_safely(self):
        # Two separate loops: no per-instance hoist point exists, so
        # the planner must degrade to whole-copy (still correct).
        swap = """
        bigupd a ([ (i,j) := a!(k,j) | j <- [1..n] ] ++
                  [ (k,j) := a!(i,j) | j <- [1..n] ])
        """
        params = {"n": 6, "i": 1, "k": 3}
        compiled = compile_bigupd(swap, params=params)
        assert compiled.report.strategy == "inplace-copy"
        base = [float(v) for v in range(24)]
        arr = FlatArray.from_list(((1, 1), (4, 6)), list(base))
        out = compiled({"a": arr})
        want = list(base)
        for j in range(6):
            want[j], want[12 + j] = base[12 + j], base[j]
        assert out.to_list() == want


class TestBoundsFromInput:
    def test_runs_at_any_size(self):
        scale = "bigupd a [* i := 2.0 * a!i | i <- [1..n] *]"
        compiled = compile_bigupd(scale, params={"n": 4})
        arr = FlatArray.from_list((1, 4), [1.0, 2.0, 3.0, 4.0])
        out = compiled({"a": arr})
        assert out.to_list() == [2.0, 4.0, 6.0, 8.0]
        assert out.bounds == arr.bounds

    def test_untouched_cells_keep_values(self):
        partial = "bigupd a [* i := 0.0 | i <- [2..3] *]"
        compiled = compile_bigupd(partial, params={})
        arr = FlatArray.from_list((1, 5), [9.0] * 5)
        out = compiled({"a": arr})
        assert out.to_list() == [9.0, 0.0, 0.0, 9.0, 9.0]

    def test_offset_bounds_respected(self):
        scale = "bigupd a [* i := a!i + 1.0 | i <- [lo..hi] *]"
        compiled = compile_bigupd(scale, params={"lo": -2, "hi": 0})
        arr = FlatArray.from_list((-3, 1), [0.0] * 5)
        out = compiled({"a": arr})
        assert out.to_list() == [0.0, 1.0, 1.0, 1.0, 0.0]


class TestSemantics:
    def test_reads_see_original_values(self):
        # bigupd: every read is of the ORIGINAL array.
        shift = "bigupd a [* i := a!(i-1) + a!(i+1) | i <- [2..n-1] *]"
        n = 6
        compiled = compile_bigupd(shift, params={"n": n})
        cells = [float(k * k) for k in range(1, n + 1)]
        arr = FlatArray.from_list((1, n), list(cells))
        out = compiled({"a": arr})
        want = list(cells)
        for i in range(2, n):
            want[i - 1] = cells[i - 2] + cells[i]
        assert out.to_list() == want

    def test_matches_interpreter_bigupd(self):
        src = """
        let a = array (1,5) [ i := i | i <- [1..5] ]
        in bigupd a [* i := a!1 + a!i | i <- [2..4] *]
        """
        oracle = evaluate(src, deep=False)
        update = "bigupd a [* i := a!1 + a!i | i <- [2..4] *]"
        compiled = compile_bigupd(update, params={})
        arr = FlatArray.from_list((1, 5), [1, 2, 3, 4, 5])
        out = compiled({"a": arr})
        assert out.to_list() == oracle.to_list()


class TestErrors:
    def test_not_a_bigupd(self):
        with pytest.raises(CompileError):
            compile_bigupd("array (1,3) [ i := 0 | i <- [1..3] ]")

    def test_computed_old_array_rejected(self):
        with pytest.raises(CompileError):
            compile_bigupd("bigupd (f x) [ 1 := 0 ]")
