"""Interpreter value and environment plumbing."""

import pytest

from repro.interp.env import Env
from repro.interp.values import (
    NIL,
    Builtin,
    Closure,
    Cons,
    haskell_list,
    is_function,
    iter_list,
    python_list,
)
from repro.interp.interp import Interpreter, deep_force
from repro.runtime.thunks import Thunk


class TestEnv:
    def test_lookup_chains(self):
        outer = Env({"x": 1})
        inner = outer.child({"y": 2})
        assert inner.lookup("x") == 1
        assert inner.lookup("y") == 2
        assert "x" in inner and "z" not in inner

    def test_shadowing(self):
        outer = Env({"x": 1})
        inner = outer.child({"x": 99})
        assert inner.lookup("x") == 99
        assert outer.lookup("x") == 1

    def test_unbound_raises(self):
        with pytest.raises(NameError):
            Env().lookup("ghost")

    def test_define_mutates_scope(self):
        env = Env()
        env.define("k", 7)
        assert env.lookup("k") == 7

    def test_repr(self):
        assert "Env" in repr(Env({"a": 1}))


class TestListValues:
    def test_haskell_list_roundtrip(self):
        assert python_list(haskell_list([1, 2, 3])) == [1, 2, 3]
        assert python_list(NIL) == []

    def test_iter_list_lazy_heads(self):
        ran = []
        xs = Cons(Thunk(lambda: ran.append(1) or "a"), NIL)
        heads = list(iter_list(xs))
        assert ran == []  # heads not forced by iteration
        assert len(heads) == 1

    def test_iter_list_rejects_non_list(self):
        with pytest.raises(TypeError):
            list(iter_list(42))

    def test_deep_force(self):
        value = (Thunk(lambda: 1), haskell_list([Thunk(lambda: 2)]))
        assert deep_force(value) == (1, [2])

    def test_nil_iterates_empty(self):
        assert list(NIL) == []


class TestFunctionValues:
    def test_builtin_currying(self):
        add = Builtin("add", 2, lambda a, b: a + b)
        partial = add.apply(1)
        assert isinstance(partial, Builtin)
        assert partial.apply(2) == 3

    def test_is_function(self):
        assert is_function(Builtin("f", 1, lambda x: x))
        assert is_function(Closure(("x",), None, Env()))
        assert not is_function(42)

    def test_reprs(self):
        assert "Builtin" in repr(Builtin("f", 2, lambda a, b: a))
        assert "Closure" in repr(Closure(("x", "y"), None, Env()))
        assert repr(NIL) == "NIL"


class TestInterpreterPlumbing:
    def test_extra_globals(self):
        interp = Interpreter(extra_globals={"seven": 7})
        from repro.lang.parser import parse_expr

        assert interp.eval(parse_expr("seven * 6"), interp.globals) == 42

    def test_apply_python_side(self):
        interp = Interpreter()
        from repro.lang.parser import parse_expr

        double = interp.eval(parse_expr("\\x -> 2 * x"), interp.globals)
        assert interp.apply(double, 21) == 42
