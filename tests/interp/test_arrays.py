"""Interpreter array semantics: array, accumArray, letrec*, bigupd."""

import pytest

from repro.interp import evaluate, run_program
from repro.runtime.errors import (
    BlackHoleError,
    UndefinedElementError,
    WriteCollisionError,
)
from repro.runtime.nonstrict import NonStrictArray
from repro.runtime.strict import StrictArray


class TestArrayConstruction:
    def test_squares(self):
        a = evaluate("array (1,5) [ i := i*i | i <- [1..5] ]", deep=False)
        assert isinstance(a, NonStrictArray)
        assert a.to_list() == [1, 4, 9, 16, 25]

    def test_two_dimensional(self):
        a = evaluate(
            "array ((1,1),(2,3)) [ (i,j) := 10*i + j "
            "| i <- [1..2], j <- [1..3] ]",
            deep=False,
        )
        assert a.at((2, 3)) == 23

    def test_bounds_builtin(self):
        assert evaluate(
            "bounds (array (1,5) [ i := 0 | i <- [1..5] ])"
        ) == (1, 5)

    def test_collision_raises(self):
        with pytest.raises(WriteCollisionError):
            evaluate("array (1,3) [ 1 := k | k <- [1..2] ]", deep=False)

    def test_empty_demanded_raises(self):
        a = evaluate("array (1,3) [ 1 := 10 ]", deep=False)
        with pytest.raises(UndefinedElementError):
            a.at(2)

    def test_values_stay_lazy_until_demanded(self):
        a = evaluate("array (1,2) [ 1 := 5, 2 := 1/0 ]", deep=False)
        assert a.at(1) == 5
        with pytest.raises(ZeroDivisionError):
            a.at(2)


class TestRecursiveArrays:
    def test_letrec_fibonacci(self):
        src = """
        letrec fib = array (1,10)
           ([ 1 := 1, 2 := 1 ] ++
            [ i := fib!(i-1) + fib!(i-2) | i <- [3..10] ])
        in fib
        """
        a = evaluate(src, deep=False)
        assert a.to_list() == [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]

    def test_wavefront(self):
        from repro.kernels import WAVEFRONT, ref_wavefront

        a = evaluate(WAVEFRONT, bindings={"n": 6}, deep=False)
        want = ref_wavefront(6)
        for i in range(1, 7):
            for j in range(1, 7):
                assert a.at((i, j)) == want[i][j]

    def test_letrec_star_returns_strict(self):
        a = evaluate(
            "letrec* a = array (1,3) [ i := i | i <- [1..3] ] in a",
            deep=False,
        )
        assert isinstance(a, StrictArray)

    def test_letrec_star_forces_hidden_bottom(self):
        src = """
        letrec* a = array (1,2)
            [ 1 := a!2, 2 := a!1 ]
        in 42
        """
        with pytest.raises(BlackHoleError):
            evaluate(src)

    def test_plain_letrec_defers_bottom(self):
        # Without the star, an unused cyclic element never runs.
        src = """
        letrec a = array (1,2)
            [ 1 := a!2 + 1, 2 := a!1 + 1 ]
        in 42
        """
        assert evaluate(src) == 42

    def test_forceElements_builtin(self):
        a = evaluate(
            "forceElements (array (1,2) [ 1 := 1, 2 := 2 ])", deep=False
        )
        assert isinstance(a, StrictArray)


class TestAccumArray:
    def test_histogram(self):
        a = evaluate(
            "accumArray (\\a b -> a + b) 0 (0,3) "
            "[ mod k 4 := 1 | k <- [1..10] ]",
            deep=False,
        )
        assert a.to_list() == [2, 3, 3, 2]

    def test_default(self):
        a = evaluate(
            "accumArray (\\a b -> a + b) 0 (1,4) [ 2 := 7 ]", deep=False
        )
        assert a.to_list() == [0, 7, 0, 0]

    def test_non_commutative_order(self):
        a = evaluate(
            "accumArray (\\a b -> a * 10 + b) 0 (1,1) "
            "[ 1 := k | k <- [1..3] ]",
            deep=False,
        )
        assert a.at(1) == 123


class TestBigupd:
    def test_bulk_update(self):
        src = """
        let a = array (1,4) [ i := 0 | i <- [1..4] ]
        in bigupd a [ i := i * 10 | i <- [2..3] ]
        """
        a = evaluate(src, deep=False)
        assert a.to_list() == [0, 20, 30, 0]

    def test_original_unchanged(self):
        src = """
        let a = array (1,3) [ i := i | i <- [1..3] ]
        in (bigupd a [ 2 := 99 ], a)
        """
        new, old = evaluate(src, deep=False)
        assert new.to_list() == [1, 99, 3]
        assert old.to_list() == [1, 2, 3]

    def test_reads_see_original_values(self):
        # bigupd semantics: values are computed against the *original*
        # array (the pair list is built before the fold).
        src = """
        let a = array (1,3) [ i := i | i <- [1..3] ]
        in bigupd a [ i := a!1 + a!i | i <- [1..3] ]
        """
        a = evaluate(src, deep=False)
        assert a.to_list() == [2, 3, 4]


class TestPrograms:
    def test_run_program(self):
        src = """
        square x = x * x;
        main = square 7
        """
        assert run_program(src) == 49

    def test_mutually_recursive_program(self):
        src = """
        isEven n = if n == 0 then True else isOdd (n - 1);
        isOdd n = if n == 0 then False else isEven (n - 1);
        main = (isEven 10, isOdd 7)
        """
        assert run_program(src) == (True, True)

    def test_program_with_array(self):
        src = """
        n = 5;
        main = sum [ k | k <- [1..n] ]
        """
        assert run_program(src) == 15
