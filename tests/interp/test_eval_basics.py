"""Interpreter basics: arithmetic, functions, laziness, builtins."""

import pytest

from repro.interp import evaluate
from repro.interp.interp import InterpError


class TestArithmetic:
    def test_literals(self):
        assert evaluate("42") == 42
        assert evaluate("2.5") == 2.5
        assert evaluate("True") is True

    def test_operators(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("10 - 4 - 3") == 3
        assert evaluate("7 / 2") == 3.5
        assert evaluate("7 % 3") == 1
        assert evaluate("div 7 2") == 3
        assert evaluate("mod 7 3") == 1

    def test_comparisons(self):
        assert evaluate("3 < 4") is True
        assert evaluate("3 >= 4") is False
        assert evaluate("3 == 3") is True
        assert evaluate("3 /= 3") is False

    def test_unary(self):
        assert evaluate("-5 + 1") == -4
        assert evaluate("not True") is False

    def test_logical_short_circuit(self):
        # The right operand would be bottom; && must not evaluate it.
        assert evaluate("False && (1 / 0 > 0)") is False
        assert evaluate("True || (1 / 0 > 0)") is True

    def test_if(self):
        assert evaluate("if 1 < 2 then 10 else 20") == 10

    def test_intrinsics(self):
        assert evaluate("abs (negate 3)") == 3
        assert evaluate("min 2 9") == 2
        assert evaluate("max 2 9") == 9
        assert evaluate("signum (0 - 5)") == -1
        assert abs(evaluate("sqrt 2.0") - 1.41421356) < 1e-6


class TestFunctions:
    def test_lambda(self):
        assert evaluate("(\\x -> x * 2) 21") == 42

    def test_multi_parameter(self):
        assert evaluate("(\\x y -> x - y) 10 3") == 7

    def test_currying(self):
        assert evaluate("let add = \\x y -> x + y; inc = add 1 in inc 41") == 42

    def test_builtin_currying(self):
        assert evaluate("let inc = max 1 in inc 0") == 1

    def test_higher_order(self):
        assert evaluate("foldl (\\a x -> a + x) 0 [1..100]") == 5050
        assert evaluate("foldr (\\x a -> x - a) 0 [1, 2, 3]") == 2

    def test_map(self):
        assert evaluate("map (\\x -> x * x) [1, 2, 3]") == [1, 4, 9]

    def test_apply_non_function(self):
        with pytest.raises(InterpError):
            evaluate("3 4")


class TestLaziness:
    def test_let_binding_unused_bottom_ok(self):
        assert evaluate("let boom = 1 / 0 in 5") == 5

    def test_argument_unused_bottom_ok(self):
        assert evaluate("(\\x -> 7) (1 / 0)") == 7

    def test_list_elements_lazy(self):
        assert evaluate("head [1, 1 / 0]") == 1

    def test_infinite_list_via_letrec_not_needed(self):
        # Spine-lazy append: only the demanded prefix is evaluated.
        assert evaluate("head ([1] ++ [1 / 0])") == 1

    def test_letrec_knot(self):
        assert evaluate("letrec f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 5") == 120


class TestListsAndSequences:
    def test_sequences(self):
        assert evaluate("[1..5]") == [1, 2, 3, 4, 5]
        assert evaluate("[1,3..9]") == [1, 3, 5, 7, 9]
        assert evaluate("[5,4..1]") == [5, 4, 3, 2, 1]
        assert evaluate("[3..1]") == []

    def test_append(self):
        assert evaluate("[1, 2] ++ [3]") == [1, 2, 3]

    def test_length_sum_product(self):
        assert evaluate("length [1..10]") == 10
        assert evaluate("sum [1..10]") == 55
        assert evaluate("product [1..5]") == 120

    def test_head_tail_null(self):
        assert evaluate("head [7, 8]") == 7
        assert evaluate("tail [7, 8]") == [8]
        assert evaluate("null []") is True
        assert evaluate("null [1]") is False

    def test_head_of_empty_raises(self):
        with pytest.raises(InterpError):
            evaluate("head []")

    def test_tuples(self):
        assert evaluate("(1 + 1, 2 * 2)") == (2, 4)


class TestBindings:
    def test_external_bindings(self):
        assert evaluate("n * n", bindings={"n": 9}) == 81

    def test_where(self):
        assert evaluate("x + y where x = 1; y = 2") == 3

    def test_shadowing(self):
        assert evaluate("let x = 1 in let x = 2 in x") == 2

    def test_sequential_let_scoping(self):
        # Plain let: right-hand sides see the enclosing scope only.
        assert evaluate("let x = 1 in let x = x + 1 in x") == 2
