"""Interpreter comprehension semantics, incl. nested comprehensions."""


from repro.interp import evaluate


class TestOrdinary:
    def test_map_like(self):
        assert evaluate("[ i * 2 | i <- [1..4] ]") == [2, 4, 6, 8]

    def test_cartesian_order(self):
        # Rightmost generator varies fastest.
        assert evaluate("[ (i, j) | i <- [1..2], j <- [1..2] ]") == [
            (1, 1), (1, 2), (2, 1), (2, 2),
        ]

    def test_guard_filters(self):
        assert evaluate("[ i | i <- [1..10], mod i 3 == 0 ]") == [3, 6, 9]

    def test_guard_between_generators(self):
        out = evaluate("[ (i, j) | i <- [1..3], i /= 2, j <- [1..2] ]")
        assert out == [(1, 1), (1, 2), (3, 1), (3, 2)]

    def test_dependent_generator(self):
        assert evaluate("[ (i, j) | i <- [1..3], j <- [1..i] ]") == [
            (1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3),
        ]

    def test_let_qualifier(self):
        assert evaluate("[ v * v | i <- [1..3], let v = i + 1 ]") == [4, 9, 16]

    def test_generator_over_list_expression(self):
        assert evaluate("[ x + 1 | x <- [10, 20, 30] ]") == [11, 21, 31]

    def test_empty_generator(self):
        assert evaluate("[ i | i <- [5..1] ]") == []

    def test_heads_are_lazy(self):
        assert evaluate("head [ 1 / i | i <- [0..3], i > 0 ]") == 1.0


class TestNested:
    def test_append_body(self):
        out = evaluate("[* [i] ++ [i * 10] | i <- [1..3] *]")
        assert out == [1, 10, 2, 20, 3, 30]

    def test_multi_element_body(self):
        out = evaluate("[* [i, -i] | i <- [1..2] *]")
        assert out == [1, -1, 2, -2]

    def test_nested_in_nested(self):
        out = evaluate("[* [* [ i*10 + j ] | j <- [1..2] *] | i <- [1..2] *]")
        assert out == [11, 12, 21, 22]

    def test_where_shared_subexpression(self):
        out = evaluate("[* ([v] ++ [v + 1] where v = i * 100) | i <- [1..2] *]")
        assert out == [100, 101, 200, 201]

    def test_guard_qualifier(self):
        out = evaluate("[* [i] | i <- [1..5], mod i 2 == 1 *]")
        assert out == [1, 3, 5]

    def test_equivalent_to_flat_append(self):
        nested = evaluate("[* [ 2*i := i ] ++ [ 2*i+1 := -i ] | i <- [1..4] *]")
        flat = evaluate(
            "[ 2*i := i | i <- [1..4] ] ++ [ 2*i+1 := -i | i <- [1..4] ]"
        )
        # Same multiset of pairs; nested interleaves per instance.
        def normalize(pairs):
            return sorted(pairs)
        assert normalize(nested) == normalize(flat)

    def test_paper_nesting_structure(self):
        # The §3.1 example shape: shared outer generator, two inner
        # branches, a trailing per-instance clause.
        out = evaluate(
            "[* ([* [ i*100 + j ] | j <- [1..2] *]) ++ [ i ] | i <- [1..2] *]"
        )
        assert out == [101, 102, 1, 201, 202, 2]
