"""Whole scientific programs built from compiled kernels.

Integration tests at the level the paper's introduction motivates:
multi-phase scientific computations (time stepping, direct solvers)
composed from compiled array comprehensions, checked against plain
Python implementations.
"""

import math

import pytest

from repro import FlatArray, compile_array, compile_array_inplace


class TestHeatEquation:
    """Explicit finite-difference heat equation, time-stepped by
    repeatedly applying a compiled in-place update."""

    STEP = """
    array (1,n)
      [* i := u!i + r * (u!(i-1) - 2.0 * u!i + u!(i+1))
       | i <- [2..n-1] *]
    """

    def reference(self, cells, n, r, steps):
        u = list(cells)
        for _ in range(steps):
            new = list(u)
            for i in range(2, n):
                new[i - 1] = u[i - 1] + r * (
                    u[i - 2] - 2.0 * u[i - 1] + u[i]
                )
            u = new
        return u

    def test_time_stepping(self):
        n, r, steps = 30, 0.25, 50
        compiled = compile_array_inplace(self.STEP, "u",
                                         params={"n": n, "r": r})
        cells = [0.0] * n
        cells[n // 2] = 100.0  # heat spike in the middle
        mesh = FlatArray.from_list((1, n), list(cells))
        for _ in range(steps):
            compiled({"u": mesh, "r": r})
        want = self.reference(cells, n, r, steps)
        assert mesh.to_list() == pytest.approx(want)

    def test_conservation(self):
        # With insulated interior updates the total heat of the
        # interior+boundary stays constant (boundary fixed at 0 and the
        # spike far from it over few steps).
        n, r = 40, 0.2
        compiled = compile_array_inplace(self.STEP, "u",
                                         params={"n": n, "r": r})
        cells = [0.0] * n
        cells[n // 2] = 60.0
        mesh = FlatArray.from_list((1, n), cells)
        for _ in range(10):
            compiled({"u": mesh, "r": r})
        assert sum(mesh.to_list()) == pytest.approx(60.0)


class TestTridiagonalSolver:
    """Thomas algorithm: two compiled recurrences (forward sweep
    backward substitution), checked against a dense solve."""

    FORWARD_C = """
    letrec* cp = array (1,n)
      ([ 1 := c!1 / b!1 ] ++
       [ i := c!i / (b!i - a!i * cp!(i-1)) | i <- [2..n] ])
    in cp
    """

    FORWARD_D = """
    letrec* dp = array (1,n)
      ([ 1 := d!1 / b!1 ] ++
       [ i := (d!i - a!i * dp!(i-1)) / (b!i - a!i * cp!(i-1))
         | i <- [2..n] ])
    in dp
    """

    BACKWARD = """
    letrec* x = array (1,n)
      ([ n := dp!n ] ++
       [ i := dp!i - cp!i * x!(i+1) | i <- [1..n-1] ])
    in x
    """

    def test_thomas_algorithm(self):
        n = 12
        a = [0.0] + [-1.0] * (n - 1)          # sub-diagonal (a_1 unused)
        b = [2.5] * n                          # diagonal
        c = [-1.0] * (n - 1) + [0.0]           # super-diagonal
        true_x = [math.sin(k) + 2.0 for k in range(n)]
        d = []
        for i in range(n):
            value = b[i] * true_x[i]
            if i > 0:
                value += a[i] * true_x[i - 1]
            if i < n - 1:
                value += c[i] * true_x[i + 1]
            d.append(value)

        env = {
            "n": n,
            "a": FlatArray.from_list((1, n), a),
            "b": FlatArray.from_list((1, n), b),
            "c": FlatArray.from_list((1, n), c),
            "d": FlatArray.from_list((1, n), d),
        }
        cp_comp = compile_array(self.FORWARD_C, params={"n": n})
        assert cp_comp.report.schedule.loop_directions()["i"] == ["forward"]
        cp = cp_comp(env)
        dp = compile_array(self.FORWARD_D, params={"n": n})(
            {**env, "cp": cp}
        )
        x_comp = compile_array(self.BACKWARD, params={"n": n})
        assert x_comp.report.schedule.loop_directions()["i"] == ["backward"]
        x = x_comp({**env, "cp": cp, "dp": dp})
        assert x.to_list() == pytest.approx(true_x)


class TestBinomialPricing:
    """Binomial option pricing: a backward 2-D recurrence over a
    triangular index space handled by guards."""

    LATTICE = """
    letrec* v = array ((0,0),(n,n))
      ([ (n,j) := max (s0 * up j n - strike) 0.0 | j <- [0..n] ] ++
       [ (i,j) := (if j <= i
                   then disc * (p * v!(i+1,j+1) + q * v!(i+1,j))
                   else 0.0)
         | i <- [0..n-1], j <- [0..n] ])
    in v
    """

    def test_backward_induction(self):
        n = 16
        s0, strike = 100.0, 95.0
        u, d = 1.1, 1 / 1.1
        rate = 1.02
        p = (rate - d) / (u - d)
        q = 1 - p
        disc = 1 / rate

        def up(j, steps):
            return (u ** j) * (d ** (steps - j))

        env = {
            "n": n, "s0": s0, "strike": strike,
            "p": p, "q": q, "disc": disc,
            "up": lambda j, steps: up(j, steps),
        }
        compiled = compile_array(self.LATTICE, params={"n": n})
        directions = compiled.report.schedule.loop_directions()
        assert directions["i"] == ["backward"]
        result = compiled(env)

        # Plain Python backward induction.
        values = [max(s0 * up(j, n) - strike, 0.0) for j in range(n + 1)]
        for i in range(n - 1, -1, -1):
            values = [
                disc * (p * values[j + 1] + q * values[j])
                for j in range(i + 1)
            ] + [0.0] * (n - i)
        assert result.at((0, 0)) == pytest.approx(values[0])
