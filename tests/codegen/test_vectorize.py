"""Vectorized code generation (paper §10 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CodegenOptions, FlatArray, compile_array, evaluate

VEC = CodegenOptions(vectorize=True)


def floats(values):
    return [float(v) for v in values]


class TestVectorizedKernels:
    def test_squares(self):
        from repro.kernels import SQUARES

        compiled = compile_array(SQUARES, params={"n": 20}, options=VEC)
        assert "_vslice(" in compiled.source
        assert "for i in range" not in compiled.source
        out = compiled({"n": 20})
        assert out.to_list() == floats(i * i for i in range(1, 21))

    def test_wavefront_borders_vector_interior_scalar(self):
        from repro.kernels import WAVEFRONT, ref_wavefront

        compiled = compile_array(WAVEFRONT, params={"n": 9}, options=VEC)
        # The border loops vectorize; the interior (carried deps) must
        # remain a scalar loop.
        assert "_vslice(" in compiled.source
        assert "for j in range" in compiled.source
        want = ref_wavefront(9)
        assert compiled({"n": 9}).to_list() == floats(
            want[i][j] for i in range(1, 10) for j in range(1, 10)
        )

    def test_strided_and_reversed_reads(self):
        src = """
        letrec y = array (1,n)
          [ i := 2.0 * x!i + x!(n+1-i) | i <- [1..n] ]
        in y
        """
        compiled = compile_array(src, params={"n": 8}, options=VEC)
        assert compiled.source.count("_vslice") >= 3
        x = FlatArray.from_list((1, 8), floats(range(1, 9)))
        out = compiled({"x": x})
        assert out.to_list() == [
            2.0 * x.at(i) + x.at(9 - i) for i in range(1, 9)
        ]

    def test_strided_writes(self):
        src = """
        letrec a = array (1,20)
          ([ 2*i := 1.0 | i <- [1..10] ] ++
           [ 2*i-1 := 2.0 | i <- [1..10] ])
        in a
        """
        compiled = compile_array(src, options=VEC)
        assert "_vslice(" in compiled.source
        out = compiled({})
        assert out.to_list() == [2.0, 1.0] * 10

    def test_two_dimensional_row_vectorization(self):
        src = """
        letrec a = array ((1,1),(m,m))
          [ (i,j) := u!(i,j) * 2.0 | i <- [1..m], j <- [1..m] ]
        in a
        """
        m = 6
        compiled = compile_array(src, params={"m": m}, options=VEC)
        # The outer i loop stays scalar, the inner j loop vectorizes.
        assert "for i in range" in compiled.source
        assert "_vslice(" in compiled.source
        u = FlatArray.from_list(((1, 1), (m, m)),
                                floats(range(m * m)))
        out = compiled({"u": u})
        assert out.to_list() == [2.0 * v for v in range(m * m)]

    def test_intrinsics_vectorize(self):
        src = "letrec a = array (1,n) [ i := sqrt (x!i) | i <- [1..n] ] in a"
        compiled = compile_array(src, params={"n": 5}, options=VEC)
        assert "_np.sqrt" in compiled.source
        x = FlatArray.from_list((1, 5), [1.0, 4.0, 9.0, 16.0, 25.0])
        assert compiled({"x": x}).to_list() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_loop_invariant_read_broadcasts(self):
        src = "letrec a = array (1,n) [ i := x!1 + 0.0 * i | i <- [1..n] ] in a"
        compiled = compile_array(src, params={"n": 4}, options=VEC)
        x = FlatArray.from_list((1, 3), [7.0, 0.0, 0.0])
        assert compiled({"x": x}).to_list() == [7.0] * 4


class TestFallbacks:
    def test_guards_fall_back_to_scalar(self):
        src = """
        letrec a = array (1,10)
          ([ i := 1.0 | i <- [1..10], mod i 2 == 0 ] ++
           [ i := 0.0 | i <- [1..10], mod i 2 == 1 ])
        in a
        """
        compiled = compile_array(src, options=VEC)
        assert "_vslice(" not in compiled.source
        assert compiled({}).to_list() == [0.0, 1.0] * 5

    def test_carried_dependence_falls_back(self):
        from repro.kernels import FORWARD_RECURRENCE

        compiled = compile_array(FORWARD_RECURRENCE, params={"n": 6},
                                 options=VEC)
        # The recurrence loop carries (<): must not vectorize.
        assert "for i in range" in compiled.source
        b = FlatArray.from_list((1, 6), floats(range(1, 7)))
        c = FlatArray.from_list((1, 6), [0.5] * 6)
        oracle = evaluate(FORWARD_RECURRENCE,
                          bindings={"n": 6, "b": b, "c": c}, deep=False)
        out = compiled({"n": 6, "b": b, "c": c})
        assert out.to_list() == pytest.approx(
            [oracle.at(i) for i in range(1, 7)]
        )

    def test_conditional_value_falls_back(self):
        src = """
        letrec a = array (1,10)
          [ i := (if i > 5 then 1.0 else 0.0) | i <- [1..10] ]
        in a
        """
        compiled = compile_array(src, options=VEC)
        assert "_vslice(" not in compiled.source
        assert compiled({}).to_list() == [0.0] * 5 + [1.0] * 5

    def test_reduction_value_falls_back(self):
        src = """
        letrec a = array (1,5)
          [ i := sum [ 1.0 | k <- [1..i] ] | i <- [1..5] ]
        in a
        """
        compiled = compile_array(src, options=VEC)
        assert "_vslice(" not in compiled.source
        assert compiled({}).to_list() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_without_option_no_numpy_buffer(self):
        from repro.kernels import SQUARES

        compiled = compile_array(SQUARES, params={"n": 5})
        assert "_np.zeros" not in compiled.source


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 12),
    coefficient=st.integers(1, 3),
    offset=st.integers(-2, 2),
    scale=st.floats(-4, 4, allow_nan=False),
)
def test_vectorized_matches_scalar(n, coefficient, offset, scale):
    """Vector and scalar codegen agree on random affine maps."""
    size = coefficient * n + max(0, offset)
    lo = min(coefficient + offset, 1)
    src = (
        f"letrec a = array ({lo},{size + 2}) "
        f"[ {coefficient}*i + {offset} := {scale!r} * x!i "
        f"| i <- [1..{n}] ] in a"
    )
    x = FlatArray.from_list((1, n), [float(k * k) for k in range(1, n + 1)])
    vector = compile_array(src, options=CodegenOptions(vectorize=True))
    scalar = compile_array(src, options=CodegenOptions())
    got_vec = vector({"x": x})
    got_scalar = scalar({"x": x})
    for sub in got_vec.bounds.range():
        value = got_scalar.at(sub)
        if value is None:
            continue  # unwritten cell: vector buffer holds 0.0
        assert got_vec.at(sub) == pytest.approx(value)
