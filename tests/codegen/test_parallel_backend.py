"""The parallel execution backend (§10 hyperplanes, executed).

Three codegen paths hang off ``CodegenOptions(parallel=True)``:

* **wavefront** — a fully dependence-carried rank-2 nest with legal
  hyperplane (1,1) becomes one strided slice assignment per
  anti-diagonal;
* **dep-free** — clauses with no loop-carried dependence become
  whole-dimension slice assignments, or thread-pool chunks when the
  body resists slice translation (``parallel_threads >= 2``);
* **sequential fallback** — everything else keeps the scalar schedule
  and the reason is recorded in ``report.parallel``.

Results must be *bit-identical* to the scalar schedule (numpy float64
elementwise ops associate exactly like the emitted Python scalars).
"""

import threading

import pytest

import repro
from repro import CodegenOptions, FlatArray, kernels
from repro.codegen.emit import CodegenError
from repro.codegen.support import par_chunks
from repro.core.parallel import (
    DEP_FREE,
    SEQUENTIAL,
    WAVEFRONT,
    plan_parallelism,
)

M = 20
ENV_SOR = {
    "m": M,
    "u": FlatArray.from_list(((1, 1), (M, M)), kernels.mesh_cells(M)),
    "omega": 1.5,
}


def compile_pair(src, params, env, threads=0):
    """Compile with and without the backend; assert identical output."""
    par = repro.compile(
        src, params=params,
        options=CodegenOptions(parallel=True, parallel_threads=threads),
    )
    seq = repro.compile(src, params=params)
    assert par(env).to_list() == seq(env).to_list()
    return par


class TestPlanning:
    def _plan(self, src, params):
        report = repro.analyze(src, params)
        return plan_parallelism(report.comp, report.edges,
                                report.parallelism)

    def test_sor_interior_is_wavefront(self):
        plan = self._plan(kernels.SOR_MONOLITHIC, {"m": M})
        kinds = {e.clause.index: e.kind for e in plan.clauses}
        assert kinds[4] == WAVEFRONT
        assert all(kinds[k] == DEP_FREE for k in range(4))
        assert plan.any_parallel

    def test_recurrence_is_sequential_with_reason(self):
        plan = self._plan(kernels.FORWARD_RECURRENCE, {"n": 30})
        entry = [e for e in plan.clauses if e.clause.index == 1][0]
        assert entry.kind == SEQUENTIAL
        assert "critical path equals work" in entry.reason

    def test_unsupported_hyperplane_names_itself(self):
        plan = self._plan(kernels.PASCAL, {"n": 10})
        entry = [e for e in plan.clauses if e.clause.index == 1][0]
        assert entry.kind == SEQUENTIAL
        assert "unsupported by codegen" in entry.reason

    def test_non_constant_distances_sequential(self):
        src = """
        letrec a = array (1,40)
          [* [ i := (if i > 1 then a!(div i 2) else 0) + 1 ]
           | i <- [1..40] *]
        in a
        """
        plan = self._plan(src, {})
        assert plan.clauses[0].kind == SEQUENTIAL
        assert not plan.any_parallel


class TestWavefront:
    def test_sor_emits_antidiagonal_sweep(self):
        par = compile_pair(kernels.SOR_MONOLITHIC, {"m": M}, ENV_SOR)
        decisions = "\n".join(par.report.parallel)
        assert "wavefront h=(1,1) over loops (i, j)" in decisions
        assert "anti-diagonal" in decisions
        # One slice assignment per diagonal, not a scalar j-loop.
        assert "_vslice" in par.source

    def test_wavefront_f_matches_reference(self):
        n = 24
        par = compile_pair(kernels.WAVEFRONT_F, {"n": n}, {"n": n})
        ref = kernels.ref_wavefront_f(n)
        flat = [ref[i][j] for i in range(1, n + 1)
                for j in range(1, n + 1)]
        assert par({"n": n}).to_list() == flat

    def test_wavefront_matches_lazy_oracle(self):
        n = 16
        par = repro.compile(kernels.WAVEFRONT_F, params={"n": n},
                            options=CodegenOptions(parallel=True))
        lazy = repro.evaluate(kernels.WAVEFRONT_F, bindings={"n": n},
                              deep=False)
        vals = [lazy.at((i, j)) for i in range(1, n + 1)
                for j in range(1, n + 1)]
        assert par({"n": n}).to_list() == vals

    def test_degenerate_sizes(self):
        for m in (3, 4):
            env = {
                "m": m,
                "u": FlatArray.from_list(((1, 1), (m, m)),
                                         kernels.mesh_cells(m)),
                "omega": 1.5,
            }
            compile_pair(kernels.SOR_MONOLITHIC, {"m": m}, env)

    def test_checks_disable_backend(self):
        par = repro.compile(
            kernels.SOR_MONOLITHIC, params={"m": M},
            options=CodegenOptions(parallel=True, bounds_checks=True),
        )
        assert "_vslice(" not in par.source
        assert any("disabled" in line for line in par.report.parallel)
        seq = repro.compile(kernels.SOR_MONOLITHIC, params={"m": M})
        assert par(ENV_SOR).to_list() == seq(ENV_SOR).to_list()


class TestDepFree:
    def test_squares_sliced(self):
        par = compile_pair(kernels.SQUARES, {"n": 40}, {"n": 40})
        assert any("dep-free" in line for line in par.report.parallel)

    def test_matmul_chunked_across_threads(self):
        n = 10
        x = FlatArray.from_list(((1, 1), (n, n)),
                                [float(k) for k in range(n * n)])
        y = FlatArray.from_list(((1, 1), (n, n)),
                                [float(k) * 0.5 for k in range(n * n)])
        par = compile_pair(kernels.MATMUL, {"n": n},
                           {"n": n, "x": x, "y": y}, threads=2)
        assert "_par_chunks(" in par.source
        assert any("chunked across 2 pool threads" in line
                   for line in par.report.parallel)

    def test_unchunkable_scalar_loop_logs_hint(self):
        par = repro.compile(kernels.MATMUL, params={"n": 6},
                            options=CodegenOptions(parallel=True))
        assert any("parallel_threads" in line
                   for line in par.report.parallel)
        assert "_par_chunks(" not in par.source


class TestSequentialFallback:
    def test_recurrence_keeps_scalar_schedule(self):
        n = 30
        b = FlatArray.from_list((1, n), [float(k) * 0.01
                                         for k in range(n)])
        c = FlatArray.from_list((1, n), [0.5] * n)
        par = compile_pair(kernels.FORWARD_RECURRENCE, {"n": n},
                           {"n": n, "b": b, "c": c})
        decisions = "\n".join(par.report.parallel)
        assert "sequential" in decisions
        assert "critical path equals work" in decisions

    def test_summary_carries_decisions(self):
        par = repro.compile(kernels.FORWARD_RECURRENCE,
                            params={"n": 10},
                            options=CodegenOptions(parallel=True))
        assert "parallel: " in par.report.summary()


class TestOptionConflicts:
    def test_from_flags_all_default_is_none(self):
        assert CodegenOptions.from_flags() is None

    def test_from_flags_parallel(self):
        options = CodegenOptions.from_flags(parallel=True,
                                            parallel_threads=4)
        assert options.parallel and options.parallel_threads == 4

    def test_from_flags_rejects_parallel_inplace(self):
        with pytest.raises(CodegenError, match="--inplace"):
            CodegenOptions.from_flags(parallel=True, inplace=True)

    def test_from_flags_rejects_orphan_threads(self):
        with pytest.raises(CodegenError, match="--parallel-threads"):
            CodegenOptions.from_flags(parallel_threads=2)

    def test_from_flags_rejects_negative_threads(self):
        with pytest.raises(CodegenError, match=">= 0"):
            CodegenOptions.from_flags(parallel=True, parallel_threads=-1)

    def test_from_flags_accepts_vectorize_inplace(self):
        # The vectorize/inplace conflict is diagnosed later, per-loop,
        # inside the in-place emitter (some in-place nests vectorize).
        options = CodegenOptions.from_flags(vectorize=True, inplace=True)
        assert options.vectorize

    def test_inplace_emitter_rejects_parallel(self):
        # The facade rejects this combination up front (see
        # tests/test_facade.py); the emitter's own guard is the
        # defence for direct callers.
        from repro.core.pipeline import CompileError, _compile_array_inplace

        with pytest.raises(CompileError, match="in-place"):
            _compile_array_inplace(kernels.JACOBI, "u", params={"m": 8},
                                   options=CodegenOptions(parallel=True))


class TestParChunks:
    def test_covers_range_in_chunks(self):
        seen = []
        par_chunks(lambda lo, hi: seen.append((lo, hi)), 1, 10, 1, 3)
        assert sorted(seen) == [(1, 4), (5, 7), (8, 10)]

    def test_single_worker_runs_whole_range(self):
        seen = []
        par_chunks(lambda lo, hi: seen.append((lo, hi)), 2, 8, 2, 1)
        assert seen == [(2, 8)]

    def test_empty_range_is_noop(self):
        par_chunks(lambda lo, hi: (_ for _ in ()).throw(AssertionError),
                   5, 4, 1, 2)

    def test_exceptions_propagate(self):
        def boom(lo, hi):
            raise ValueError("inside chunk")

        with pytest.raises(ValueError, match="inside chunk"):
            par_chunks(boom, 1, 10, 1, 4)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            par_chunks(lambda lo, hi: None, 1, 10, 0, 2)

    def test_shared_pool_is_reused_across_calls(self):
        # One process-wide executor serves every parallel loop; a
        # second dispatch at the same width must not build a new pool.
        from repro.codegen import support

        par_chunks(lambda lo, hi: None, 1, 100, 1, 3)
        pool = support._PAR_POOL
        assert pool is not None
        par_chunks(lambda lo, hi: None, 1, 100, 1, 3)
        assert support._PAR_POOL is pool
        # Narrower requests reuse the wide pool too.
        par_chunks(lambda lo, hi: None, 1, 100, 1, 2)
        assert support._PAR_POOL is pool

    def test_shared_pool_grows_to_max_workers_seen(self):
        from repro.codegen import support

        par_chunks(lambda lo, hi: None, 1, 100, 1, 2)
        before = support._PAR_POOL_WORKERS
        wider = before + 2
        par_chunks(lambda lo, hi: None, 1, 100, 1, wider)
        assert support._PAR_POOL_WORKERS == wider
        # The grown pool still runs every chunk.
        seen = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                seen.append((lo, hi))

        par_chunks(body, 1, 100, 1, wider)
        assert sum(hi - lo + 1 for lo, hi in seen) == 100


class TestVectorizeInteraction:
    def test_parallel_supersedes_vectorize_on_dep_free(self):
        par = repro.compile(
            kernels.SQUARES, params={"n": 30},
            options=CodegenOptions(parallel=True, vectorize=True),
        )
        vec = repro.compile(kernels.SQUARES, params={"n": 30},
                            options=CodegenOptions(vectorize=True))
        assert par({"n": 30}).to_list() == vec({"n": 30}).to_list()

    def test_fingerprints_differ_between_backends(self):
        base = repro.fingerprint(kernels.SQUARES, params={"n": 30},
                                 options=CodegenOptions(vectorize=True))
        par = repro.fingerprint(
            kernels.SQUARES, params={"n": 30},
            options=CodegenOptions(parallel=True),
        )
        assert base != par
