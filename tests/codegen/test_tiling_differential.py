"""Differential tests: cache-blocked (tiled) kernels vs the oracle.

Tiling reorders the iteration space into blocks; §5 direction vectors
say when that reordering preserves every dependence.  These tests pin
the other half of the contract: whenever ``plan_tiling`` accepts a
nest, the blocked loops are *bit-identical* to the untiled kernel and
to the lazy oracle — including tile sizes that do not divide the
extent, degenerate 1x1 tiles, and tiles larger than the array.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.codegen.emit import CodegenOptions
from repro.codegen.support import FlatArray
from repro.kernels import PROGRAM_SOR, PROGRAM_STENCIL_CHAIN
from repro.runtime.bounds import Bounds

#: Fused-style 1-D smoothing stencil with boundary clauses folded in.
STENCIL = (
    "array (1,m) [ i := if i == 1 then b!1 else "
    "if i == m then b!m else (b!(i-1) + b!i + b!(i+1)) / 3.0 "
    "| i <- [1..m] ]"
)

#: 2-D Gauss-Seidel-style recurrence: all-'<'/'=' directions, so the
#: nest tiles in lexicographic tile order ("lex" kind).
GAUSS_SEIDEL = (
    "letrec* a = array ((1,1),(m,m)) [ (i,j) := "
    "if i == 1 || j == 1 then 1.0 else "
    "(a!(i-1,j) + a!(i,j-1)) / 2.0 "
    "| i <- [1..m], j <- [1..m] ] in a"
)


def arr(vals, lo=1):
    return FlatArray(Bounds(lo, lo + len(vals) - 1), list(vals))


def input_for(m):
    return arr([float((7 * k) % 11) - 3.0 for k in range(m)])


def cells_1d(result, m):
    return [result[i] for i in range(1, m + 1)]


def cells_2d(result, m):
    return [result[(i, j)]
            for i in range(1, m + 1) for j in range(1, m + 1)]


class TestTiledStencil:
    @pytest.mark.parametrize("tile", [1, 3, 5, 100])
    def test_bit_identical_all_tile_shapes(self, tile):
        # 13 is prime: no tile size above divides it evenly, 1 is the
        # degenerate tile, 100 swallows the whole array.
        m = 13
        b = input_for(m)
        tiled = repro.compile(STENCIL, params={"m": m},
                              options=CodegenOptions(tile=tile))
        assert tiled.report.tiling is not None
        assert tiled.report.tiling.ok
        assert tiled.report.tiling.kind == "rect"
        plain = repro.compile(STENCIL, params={"m": m})
        oracle = repro.evaluate(STENCIL, {"m": m, "b": b})
        got = cells_1d(tiled({"b": b}), m)
        assert got == cells_1d(plain({"b": b}), m)
        assert got == cells_1d(oracle, m)

    def test_auto_tile_matches_untiled(self):
        m = 17
        b = input_for(m)
        tiled = repro.compile(STENCIL, params={"m": m},
                              options=CodegenOptions(tile="auto"))
        assert tiled.report.tiling.ok
        assert tiled.report.tiling.source == "auto"
        plain = repro.compile(STENCIL, params={"m": m})
        assert cells_1d(tiled({"b": b}), m) == cells_1d(plain({"b": b}), m)

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 24), tile=st.integers(1, 30))
    def test_random_sizes(self, m, tile):
        b = input_for(m)
        tiled = repro.compile(STENCIL, params={"m": m},
                              options=CodegenOptions(tile=tile))
        assert tiled.report.tiling.ok
        plain = repro.compile(STENCIL, params={"m": m})
        assert cells_1d(tiled({"b": b}), m) == cells_1d(plain({"b": b}), m)


class TestTiledGaussSeidel:
    @pytest.mark.parametrize("tile", [1, 2, 4, 50])
    def test_lex_tiles_bit_identical(self, tile):
        m = 9
        tiled = repro.compile(GAUSS_SEIDEL, params={"m": m},
                              options=CodegenOptions(tile=tile))
        assert tiled.report.tiling.ok
        assert tiled.report.tiling.kind == "lex"
        plain = repro.compile(GAUSS_SEIDEL, params={"m": m})
        oracle = repro.evaluate(GAUSS_SEIDEL, {"m": m})
        got = cells_2d(tiled({}), m)
        assert got == cells_2d(plain({}), m)
        assert got == cells_2d(oracle, m)

    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(2, 10), tile=st.integers(1, 12))
    def test_random_sizes(self, m, tile):
        tiled = repro.compile(GAUSS_SEIDEL, params={"m": m},
                              options=CodegenOptions(tile=tile))
        assert tiled.report.tiling.ok
        plain = repro.compile(GAUSS_SEIDEL, params={"m": m})
        assert cells_2d(tiled({}), m) == cells_2d(plain({}), m)


class TestTiledPrograms:
    def params_match(self, src, params, tile):
        tiled = repro.compile_program(
            src, params=params, options=CodegenOptions(tile=tile)
        )
        plain = repro.compile_program(src, params=params)
        got, want = tiled({}), plain({})
        oracle = repro.run_program(src, bindings=dict(params))
        assert got.bounds == want.bounds
        assert got.bounds == oracle.bounds
        for subscript in got.bounds.range():
            assert got.at(subscript) == want.at(subscript)
            assert got.at(subscript) == oracle.at(subscript)
        return tiled

    @pytest.mark.parametrize("tile", [1, 3, "auto"])
    def test_stencil_chain(self, tile):
        tiled = self.params_match(PROGRAM_STENCIL_CHAIN, {"m": 10}, tile)
        assert any("_ts0" in src for src in tiled.sources().values())

    def test_sor_rejects_with_reason_but_stays_identical(self):
        # The SOR step's schedule (boundary clauses around the
        # interior sweep) is not a perfect chain — the binding must
        # fall back untiled, say why, and still match the oracle.
        tiled = self.params_match(
            PROGRAM_SOR, {"m": 8, "k": 5, "omega": 1.25}, 4
        )
        tile_falls = [f for f in tiled.report.fallbacks
                      if f.startswith("tile ")]
        assert tile_falls
        assert "perfect loop chain" in tile_falls[0]


class TestTilingRejections:
    def test_backward_nest_rejected(self):
        src = ("letrec* a = array (1,8) [ i := "
               "if i == 8 then 1.0 else a!(i+1) + 1.0 "
               "| i <- [1..8] ] in a")
        compiled = repro.compile(src, options=CodegenOptions(tile=4))
        assert not compiled.report.tiling.ok
        assert "backward" in compiled.report.tiling.note
        # ... and the untiled kernel still matches the oracle.
        oracle = repro.evaluate(src, {})
        out = compiled({})
        assert cells_1d(out, 8) == cells_1d(oracle, 8)

    def test_accumulate_rejected(self):
        src = ("accumArray (\\a b -> a + b) 0 (1,5) "
               "[ (k!i) := 1 | i <- [1..10] ]")
        compiled = repro.compile(src, options=CodegenOptions(tile=4))
        assert not compiled.report.tiling.ok
        assert "re-associate" in compiled.report.tiling.note

    def test_rejection_never_changes_results(self):
        src = ("letrec* a = array (1,8) [ i := "
               "if i == 8 then 1.0 else a!(i+1) + 1.0 "
               "| i <- [1..8] ] in a")
        plain = repro.compile(src)
        tiled = repro.compile(src, options=CodegenOptions(tile=3))
        assert cells_1d(tiled({}), 8) == cells_1d(plain({}), 8)
