"""Expression translation to Python source."""

import math

import pytest

from repro.codegen.exprs import CodegenError, ExprGen
from repro.lang.parser import parse_expr


def translate(src, locals_=(), params=None, reader=None):
    gen = ExprGen(
        reader or (lambda name, dims, g: f"READ_{name}[{','.join(dims)}]"),
        locals_=set(locals_),
        params=params,
    )
    return gen, gen.emit(parse_expr(src))


def evaluates_to(src, expected, locals_=None, params=None):
    gen, code = translate(src, locals_=(locals_ or {}).keys(), params=params)
    namespace = {"_math": math}
    namespace.update(locals_ or {})
    assert eval(code, namespace) == expected


class TestBasics:
    def test_arithmetic(self):
        evaluates_to("1 + 2 * 3", 7)
        evaluates_to("(1 + 2) * 3", 9)
        evaluates_to("7 / 2", 3.5)
        evaluates_to("div 7 2", 3)
        evaluates_to("mod 7 3", 1)

    def test_comparison_and_logic(self):
        evaluates_to("1 < 2 && 3 >= 3", True)
        evaluates_to("1 == 2 || 2 /= 3", True)
        evaluates_to("not (1 == 1)", False)

    def test_conditional(self):
        evaluates_to("if 2 > 1 then 10 else 20", 10)

    def test_locals_pass_through(self):
        evaluates_to("i * 2 + j", 25, locals_={"i": 11, "j": 3})

    def test_params_inlined(self):
        gen, code = translate("n + 1", params={"n": 41})
        assert "41" in code
        assert eval(code, {}) == 42

    def test_env_vars_collected(self):
        gen, code = translate("omega * 2")
        assert gen.used_env == {"omega"}
        assert "_v_omega" in code

    def test_intrinsics(self):
        evaluates_to("abs (0 - 5)", 5)
        evaluates_to("min 3 7 + max 3 7", 10)
        evaluates_to("sqrt 4.0", 2.0)
        evaluates_to("fromIntegral 3", 3.0)
        evaluates_to("signum (0-9)", -1)

    def test_tuple(self):
        evaluates_to("(1 + 1, 2)", (2, 2))

    def test_let_expression(self):
        evaluates_to("let v = 6 in v * 7", 42)

    def test_unknown_function_from_env(self):
        gen, code = translate("f 3")
        assert gen.used_env == {"f"}
        assert eval(code, {"_v_f": lambda x: x + 1}) == 4


class TestArrayReads:
    def test_reader_callback(self):
        gen, code = translate("a!(i-1) + 1", locals_=["i"])
        assert "READ_a" in code

    def test_multidimensional(self):
        gen, code = translate("a!(i, j+1)", locals_=["i", "j"])
        assert "READ_a" in code
        assert "," in code

    def test_computed_array_rejected(self):
        with pytest.raises(CodegenError):
            translate("(f x)!1")


class TestReductions:
    def test_sum_over_sequence(self):
        evaluates_to("sum [ k | k <- [1..10] ]", 55)

    def test_sum_with_guard(self):
        evaluates_to("sum [ k | k <- [1..10], mod k 2 == 0 ]", 30)

    def test_product(self):
        evaluates_to("product [ k | k <- [1..5] ]", 120)

    def test_nested_generators(self):
        evaluates_to("sum [ i * j | i <- [1..3], j <- [1..3] ]", 36)

    def test_strided(self):
        evaluates_to("sum [ k | k <- [2,4..10] ]", 30)

    def test_backward(self):
        evaluates_to("sum [ k | k <- [5,4..1] ]", 15)

    def test_no_intermediate_list_in_source(self):
        gen, code = translate("sum [ k * k | k <- [1..100] ]")
        assert "sum(" in code
        assert "[" not in code.split("sum(", 1)[1].split(")")[0] or True
        # Generator expression, not a list comprehension:
        assert "for k in range" in code

    def test_reduction_over_general_list_falls_back(self):
        with pytest.raises(CodegenError):
            translate("sum [ k | k <- xs ]")


class TestErrors:
    def test_lambda_rejected(self):
        with pytest.raises(CodegenError):
            translate("\\x -> x")

    def test_recursive_let_rejected(self):
        with pytest.raises(CodegenError):
            translate("letrec v = v in v")
