"""Generated code: thunkless, thunked, and in-place emitters."""

import pytest

from repro import (
    CodegenOptions,
    FlatArray,
    compile_array,
    compile_array_inplace,
    evaluate,
)
from repro.codegen.support import CHECK_STATS
from repro.runtime import incremental
from repro.runtime.errors import UndefinedElementError, WriteCollisionError
from repro.runtime.thunks import STATS as THUNK_STATS


def oracle_list(src, bindings=None):
    a = evaluate(src, bindings=bindings, deep=False)
    return [a.at(s) for s in a.bounds.range()]


class TestThunkless:
    def test_matches_oracle_on_kernels(self):
        from repro.kernels import SQUARES, STRIDE3, WAVEFRONT

        for src, params in [
            (SQUARES, {"n": 12}),
            (WAVEFRONT, {"n": 7}),
            (STRIDE3, {}),
        ]:
            compiled = compile_array(src, params=params)
            assert compiled.report.strategy == "thunkless"
            assert compiled(params).to_list() == oracle_list(src, params)

    def test_no_thunks_allocated(self):
        from repro.kernels import WAVEFRONT

        compiled = compile_array(WAVEFRONT, params={"n": 10})
        THUNK_STATS.reset()
        compiled({"n": 10})
        assert THUNK_STATS.created == 0

    def test_checks_elided_when_proved(self):
        from repro.kernels import WAVEFRONT

        compiled = compile_array(WAVEFRONT, params={"n": 6})
        assert not compiled.report.checks.collision_checks
        assert not compiled.report.checks.empties_check
        CHECK_STATS.reset()
        compiled({"n": 6})
        assert CHECK_STATS.collision_checks == 0
        assert CHECK_STATS.bounds_checks == 0

    def test_forced_checks_counted(self):
        from repro.kernels import WAVEFRONT

        options = CodegenOptions(
            bounds_checks=True, collision_checks=True, empties_check=True
        )
        compiled = compile_array(WAVEFRONT, params={"n": 6},
                                 options=options)
        CHECK_STATS.reset()
        compiled({"n": 6})
        assert CHECK_STATS.collision_checks == 36
        assert CHECK_STATS.bounds_checks == 36
        assert CHECK_STATS.empty_checks == 36

    def test_runtime_collision_check_fires(self):
        src = "letrec a = array (1,9) [* [ mod i 3 + 1 := i ] | i <- [1..4] *] in a"
        compiled = compile_array(src)
        assert compiled.report.checks.collision_checks
        with pytest.raises(WriteCollisionError):
            compiled({})

    def test_runtime_empties_check_fires(self):
        src = "letrec a = array (1,n) [ i := 0 | i <- [1..n-1] ] in a"
        compiled = compile_array(src)  # symbolic: checks compiled
        with pytest.raises(UndefinedElementError):
            compiled({"n": 5})

    def test_runtime_bounds_parameterized(self):
        # Compile once with symbolic n, run at several sizes.
        src = "letrec a = array (1,n) [ i := i * i | i <- [1..n] ] in a"
        compiled = compile_array(src)
        for n in (1, 4, 9):
            out = compiled({"n": n})
            assert out.to_list() == [i * i for i in range(1, n + 1)]

    def test_free_function_from_env(self):
        src = "letrec a = array (1,5) [ i := f i | i <- [1..5] ] in a"
        compiled = compile_array(src, params={})
        out = compiled({"f": lambda x: x * 100})
        assert out.to_list() == [100, 200, 300, 400, 500]

    def test_other_array_inputs(self):
        src = """
        letrec y = array (1,4) [ i := 2 * x!i + x!1 | i <- [1..4] ]
        in y
        """
        x = FlatArray.from_list((1, 4), [1, 2, 3, 4])
        compiled = compile_array(src, params={})
        assert compiled({"x": x}).to_list() == [3, 5, 7, 9]

    def test_zero_trip_loops(self):
        src = """
        letrec a = array (1,3)
          ([ i := 1 | i <- [1..3] ] ++ [ i := 2 | i <- [5..4] ])
        in a
        """
        compiled = compile_array(src, params={})
        assert compiled({}).to_list() == [1, 1, 1]


class TestThunked:
    def test_matches_thunkless(self):
        from repro.kernels import WAVEFRONT

        thunked = compile_array(WAVEFRONT, params={"n": 6},
                                force_strategy="thunked")
        thunkless = compile_array(WAVEFRONT, params={"n": 6})
        assert thunked({"n": 6}).to_list() == thunkless({"n": 6}).to_list()

    def test_really_allocates_thunks(self):
        from repro.kernels import WAVEFRONT

        thunked = compile_array(WAVEFRONT, params={"n": 6},
                                force_strategy="thunked")
        THUNK_STATS.reset()
        thunked({"n": 6})
        assert THUNK_STATS.created >= 36

    def test_fallback_on_unschedulable(self):
        from repro.kernels import CYCLIC_FALLBACK

        compiled = compile_array(CYCLIC_FALLBACK)
        assert compiled.report.strategy == "thunked"
        assert compiled({}).to_list() == oracle_list(CYCLIC_FALLBACK)

    def test_force_thunkless_on_unschedulable_raises(self):
        from repro.kernels import CYCLIC_FALLBACK
        from repro import CompileError

        with pytest.raises(CompileError):
            compile_array(CYCLIC_FALLBACK, force_strategy="thunkless")

    def test_guards_respected(self):
        src = """
        letrec a = array (1,6)
          ([ i := 1 | i <- [1..6], mod i 2 == 0 ] ++
           [ i := 0 | i <- [1..6], mod i 2 == 1 ])
        in a
        """
        compiled = compile_array(src, force_strategy="thunked")
        assert compiled({}).to_list() == [0, 1, 0, 1, 0, 1]


class TestInplace:
    def test_swap_copy_count_matches_hand_code(self):
        from repro.kernels import SWAP, ref_swap

        params = {"m": 6, "n": 8, "i": 2, "k": 5}
        compiled = compile_array_inplace(SWAP, "a", params=params)
        base = [float(v) for v in range(48)]
        arr = FlatArray.from_list(((1, 1), (6, 8)), list(base))
        incremental.STATS.reset()
        out = compiled({"a": arr})
        assert out.to_list() == ref_swap(base, 6, 8, 2, 5)
        assert incremental.STATS.cells_copied == 8  # one temp per column
        assert incremental.STATS.arrays_copied == 0

    def test_mutation_is_in_place(self):
        from repro.kernels import SCALE_ROW

        params = {"m": 3, "n": 4, "i": 2, "s": 10}
        compiled = compile_array_inplace(SCALE_ROW, "a", params=params)
        arr = FlatArray.from_list(((1, 1), (3, 4)), list(range(12)))
        out = compiled({"a": arr, "s": 10})
        assert out.cells is arr.cells  # same storage, no copy

    def test_jacobi_node_splitting(self):
        from repro.kernels import JACOBI, mesh_cells, ref_jacobi

        m = 10
        compiled = compile_array_inplace(JACOBI, "u", params={"m": m})
        assert compiled.report.strategy == "inplace"
        cells = mesh_cells(m)
        arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
        incremental.STATS.reset()
        out = compiled({"u": arr})
        assert out.to_list() == ref_jacobi(cells, m)
        interior = (m - 2) ** 2
        # Row ring + scalar ring: 2 copies per interior element,
        # versus m*m for a whole-array copy per sweep and
        # interior*m*m for naive per-update copying.
        assert incremental.STATS.cells_copied == 2 * interior
        assert incremental.STATS.arrays_copied == 0

    def test_sor_zero_copies(self):
        from repro.kernels import SOR, mesh_cells, ref_sor

        m = 10
        compiled = compile_array_inplace(SOR, "u", params={"m": m})
        cells = mesh_cells(m)
        arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
        incremental.STATS.reset()
        out = compiled({"u": arr, "omega": 1.3})
        assert out.to_list() == pytest.approx(ref_sor(cells, m, 1.3))
        assert incremental.STATS.cells_copied == 0
        THUNK_STATS.reset()
        assert THUNK_STATS.created == 0

    def test_whole_copy_fallback_counts_one_copy(self):
        from repro.kernels import REVERSE

        compiled = compile_array_inplace(REVERSE, "a", params={"n": 10})
        assert compiled.report.strategy == "inplace-copy"
        arr = FlatArray.from_list((1, 10), list(range(10)))
        incremental.STATS.reset()
        out = compiled({"a": arr})
        assert out.to_list() == list(reversed(range(10)))
        assert incremental.STATS.arrays_copied == 1
        assert incremental.STATS.cells_copied == 10

    def test_repeated_sweeps_converge(self):
        # Many in-place Gauss-Seidel sweeps drive the residual down —
        # end-to-end sanity for buffer reuse across calls.
        from repro.kernels import GAUSS_SEIDEL, mesh_cells

        m = 8
        compiled = compile_array_inplace(GAUSS_SEIDEL, "u", params={"m": m})
        arr = FlatArray.from_list(((1, 1), (m, m)), mesh_cells(m))
        for _ in range(200):
            compiled({"u": arr})
        interior = [
            arr.at((i, j)) for i in range(2, m) for j in range(2, m)
        ]
        # Laplace equation with fixed boundary: interior is harmonic;
        # successive sweeps must have converged to a fixed point.
        before = list(arr.cells)
        compiled({"u": arr})
        assert arr.cells == pytest.approx(before, abs=1e-9)
        assert interior  # non-trivial
