"""Codegen support runtime: FlatArray, slices, check helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.codegen.support import (
    CHECK_STATS,
    FlatArray,
    check_collision,
    check_empties,
    flatten_input,
    make_slice,
)
from repro.runtime.bounds import Bounds
from repro.runtime.errors import UndefinedElementError, WriteCollisionError
from repro.runtime.nonstrict import NonStrictArray


class TestFlatArray:
    def test_roundtrip(self):
        a = FlatArray.from_list((1, 4), [10, 20, 30, 40])
        assert a.at(3) == 30
        assert a[1] == 10
        assert a.to_list() == [10, 20, 30, 40]
        assert len(a) == 4

    def test_two_dimensional(self):
        a = FlatArray.from_list(((0, 0), (1, 2)), list(range(6)))
        assert a.at((1, 2)) == 5
        assert list(a.assocs())[0] == ((0, 0), 0)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            FlatArray(Bounds(1, 3), [1, 2])

    def test_equality_with_other_array_types(self):
        flat = FlatArray.from_list((1, 2), [5, 6])
        lazy = NonStrictArray((1, 2), [(1, 5), (2, 6)])
        assert flat == lazy
        assert flat != FlatArray.from_list((1, 2), [5, 7])

    def test_flatten_input_accepts_array_types(self):
        lazy = NonStrictArray((1, 2), [(1, 5), (2, 6)])
        bounds, cells = flatten_input(lazy)
        assert bounds == Bounds(1, 2)
        assert cells == [5, 6]

    def test_flatten_input_shares_flat_storage(self):
        flat = FlatArray.from_list((1, 2), [5, 6])
        _, cells = flatten_input(flat)
        assert cells is flat.cells  # in-place emitters rely on this

    def test_flatten_input_rejects_junk(self):
        with pytest.raises(TypeError):
            flatten_input([1, 2, 3])


class TestMakeSlice:
    def test_forward(self):
        assert list(range(10))[make_slice(2, 1, 3)] == [2, 3, 4]

    def test_strided(self):
        assert list(range(10))[make_slice(1, 3, 3)] == [1, 4, 7]

    def test_backward(self):
        assert list(range(10))[make_slice(5, -1, 3)] == [5, 4, 3]

    def test_backward_reaching_zero(self):
        # stop would be -1: must become None, not "one from the end".
        assert list(range(10))[make_slice(2, -1, 3)] == [2, 1, 0]

    def test_backward_strided_to_zero(self):
        assert list(range(10))[make_slice(6, -3, 3)] == [6, 3, 0]

    def test_empty(self):
        assert list(range(10))[make_slice(4, 1, 0)] == []
        assert list(range(10))[make_slice(4, 1, -2)] == []

    @given(
        start=st.integers(0, 30),
        stride=st.integers(-5, 5).filter(lambda s: s != 0),
        count=st.integers(0, 10),
    )
    def test_exact_cell_coverage(self, start, stride, count):
        cells = list(range(100))
        wanted = [start + stride * k for k in range(count)]
        if any(w < 0 or w >= 100 for w in wanted):
            return
        assert cells[make_slice(start, stride, count)] == wanted


class TestCheckHelpers:
    def test_collision_flags_and_counts(self):
        CHECK_STATS.reset()
        defined = [False] * 3
        check_collision(defined, 1, (2,))
        assert defined[1]
        with pytest.raises(WriteCollisionError):
            check_collision(defined, 1, (2,))
        assert CHECK_STATS.collision_checks == 2

    def test_empties_sweep(self):
        CHECK_STATS.reset()
        check_empties([True, True], Bounds(1, 2))
        with pytest.raises(UndefinedElementError) as info:
            check_empties([True, False], Bounds(1, 2))
        assert info.value.subscript == 2
        assert CHECK_STATS.empty_checks == 4

    def test_stats_snapshot(self):
        CHECK_STATS.reset()
        snap = CHECK_STATS.snapshot()
        assert snap == {
            "bounds_checks": 0, "collision_checks": 0, "empty_checks": 0,
        }
        assert "CheckStats" in repr(CHECK_STATS)
