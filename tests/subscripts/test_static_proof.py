"""Static subscript proofs through the whole-program compiler.

When the index array's own comprehension is a sibling binding, its
properties are proven at compile time and the scatter compiles to a
plain unchecked schedule — no runtime verifier, no per-write checks.
"""

import pytest

import repro
from repro.codegen.support import VERIFY_STATS
from repro.kernels import PROGRAM_SCATTER
from repro.runtime.errors import WriteCollisionError


def binding_report(program, name):
    for info in program.report.bindings:
        if info.name == name:
            return info.report
    raise AssertionError(f"no binding {name!r}")


class TestProgramScatter:
    def test_static_proof_elides_everything(self):
        program = repro.compile_program(PROGRAM_SCATTER,
                                        params={"n": 8})
        report = binding_report(program, "a")
        assert report.strategy == "thunkless"
        sub = report.subscripts
        assert sub.static_injective == frozenset({"p"})
        prop = sub.properties["p"]
        assert prop.total and prop.source == "static"
        assert not report.checks.bounds_checks
        assert not report.checks.collision_checks
        assert not report.checks.empties_check
        # The support import is unconditional; the *call* must be gone.
        assert "_verify(" not in program.sources()["a"]

    def test_runs_without_verifier(self):
        n = 8
        program = repro.compile_program(PROGRAM_SCATTER,
                                        params={"n": n})
        VERIFY_STATS.reset()
        out = program({})
        assert VERIFY_STATS.verifications == 0
        # a!(p!i) := b!i with p!i = n+1-i and b!i = i*(i+1), so cell j
        # holds b!(n+1-j).
        expected = [(n + 1 - j) * (n + 2 - j) for j in range(1, n + 1)]
        assert [out[i] for i in range(1, n + 1)] == expected

    def test_matches_oracle(self):
        n = 8
        program = repro.compile_program(PROGRAM_SCATTER,
                                        params={"n": n})
        out = program({})
        oracle = repro.run_program(PROGRAM_SCATTER, bindings={"n": n})
        assert ([out[i] for i in range(1, n + 1)]
                == [oracle[i] for i in range(1, n + 1)])

    def test_program_notes_surface_the_proof(self):
        program = repro.compile_program(PROGRAM_SCATTER,
                                        params={"n": 8})
        assert any("statically proven" in note
                   for note in program.report.notes)

    def test_explain_program_has_subscript_area(self):
        compiled = repro.compile(PROGRAM_SCATTER, params={"n": 8},
                                 explain=True)
        subs = compiled.explanation.by_area("subscript")
        assert any(d.verdict == "accepted" for d in subs)

    def test_index_producer_pinned_to_python_backend(self):
        # Under backend="c" the index array p must stay on the python
        # tier: the C tier computes integer kernels in double, and a
        # double cell cannot subscript the consumer's python-emitted
        # scatter.  The demotion is a planning decision, so it holds
        # (and is reasoned) with or without a toolchain.
        from repro.codegen.emit import CodegenOptions

        n = 8
        program = repro.compile_program(
            PROGRAM_SCATTER, params={"n": n},
            options=CodegenOptions(backend="c"),
        )
        assert any(line.startswith("backend 'p'")
                   and "stays on python" in line
                   for line in program.report.fallbacks)
        out = program({})
        expected = [(n + 1 - j) * (n + 2 - j) for j in range(1, n + 1)]
        assert [out[i] for i in range(1, n + 1)] == expected


class TestMonotoneNotInjective:
    def test_bounded_monotone_accum_needs_no_checks(self):
        # The key array is statically bounded but *not* injective
        # (constant): fine for accumulation, which needs bounds only.
        prog = """
k = array (1,10) [ i := 3 | i <- [1..10] ];
h = accumArray (\\a b -> a + b) 0 (1,5) [ (k!i) := 1 | i <- [1..10] ];
main = h
"""
        program = repro.compile_program(prog)
        report = binding_report(program, "h")
        assert report.subscripts.static_bounded == frozenset({"k"})
        assert not report.checks.bounds_checks
        VERIFY_STATS.reset()
        out = program({})
        assert VERIFY_STATS.verifications == 0
        assert [out[i] for i in range(1, 6)] == [0, 0, 10, 0, 0]

    def test_non_injective_scatter_refuses_the_guard(self):
        # Statically *disproven* injectivity: a verifier would fail on
        # every call, so no guard is planned — the scatter compiles
        # with the ordinary check battery and the duplicate writes
        # raise a collision at run time.
        prog = """
k = array (1,10) [ i := 3 | i <- [1..10] ];
a = array (1,5) [ (k!i) := 1 | i <- [1..10] ];
main = a
"""
        program = repro.compile_program(prog)
        report = binding_report(program, "a")
        assert report.strategy == "thunkless"
        assert "k" not in report.subscripts.static_injective
        assert report.checks.collision_checks
        with pytest.raises(WriteCollisionError):
            program({})
