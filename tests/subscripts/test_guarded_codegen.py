"""Guarded dual-schedule kernels: fast/fallback selection and errors.

The generated module runs the O(n) subscript verifier per call; a
clean index array takes the unchecked fast path, anything else replays
the loops with the full check battery and fails with the oracle's
error — never a raw ``IndexError`` or a silently wrapped write.
"""

import pytest

import repro
from repro.codegen.emit import CodegenOptions
from repro.codegen.support import VERIFY_STATS, FlatArray
from repro.runtime.bounds import Bounds
from repro.runtime.errors import (
    BoundsError,
    IndexTypeError,
    WriteCollisionError,
)

SCATTER = "letrec* a = array (1,8) [ (p!i) := b!i | i <- [1..8] ] in a"
HIST = "accumArray (\\a b -> a + b) 0 (1,5) [ (k!i) := 1 | i <- [1..10] ]"


def arr(vals, lo=1):
    return FlatArray(Bounds(lo, lo + len(vals) - 1), list(vals))


def cells(result, lo, hi):
    return [result[i] for i in range(lo, hi + 1)]


class TestGuardedScatter:
    def test_strategy_is_guarded(self):
        compiled = repro.compile(SCATTER)
        assert compiled.report.strategy == "guarded"
        assert compiled.report.subscripts.guarded
        assert "_verify" in compiled.source

    def test_valid_permutation_takes_fast_path(self):
        compiled = repro.compile(SCATTER)
        p = arr([3, 1, 4, 2, 8, 6, 5, 7])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        VERIFY_STATS.reset()
        out = compiled({"p": p, "b": b})
        assert VERIFY_STATS.fast_path == 1
        assert VERIFY_STATS.fallbacks == 0
        oracle = repro.evaluate(SCATTER, {"p": p, "b": b})
        assert cells(out, 1, 8) == cells(oracle, 1, 8)

    def test_duplicate_index_raises_collision(self):
        compiled = repro.compile(SCATTER)
        p = arr([3, 1, 4, 2, 8, 6, 5, 3])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        VERIFY_STATS.reset()
        with pytest.raises(WriteCollisionError):
            compiled({"p": p, "b": b})
        assert VERIFY_STATS.fallbacks == 1

    def test_out_of_bounds_raises_loudly(self):
        compiled = repro.compile(SCATTER)
        p = arr([3, 1, 4, 2, 8, 6, 5, 9])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        with pytest.raises(BoundsError):
            compiled({"p": p, "b": b})

    def test_negative_index_never_wraps(self):
        # Python list indexing would silently wrap -1; the fallback
        # path must raise instead.
        compiled = repro.compile(SCATTER)
        p = arr([3, 1, 4, 2, 8, 6, 5, -1])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        with pytest.raises(BoundsError):
            compiled({"p": p, "b": b})

    def test_non_int_index_raises_type_error(self):
        compiled = repro.compile(SCATTER)
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        p = arr([3, 1, 4, 2, 8, 6, 5, 7.0])
        with pytest.raises(TypeError):
            compiled({"p": p, "b": b})

    def test_bool_index_raises_type_error(self):
        compiled = repro.compile(SCATTER)
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        p = arr([3, 1, 4, 2, 8, 6, 5, True])
        with pytest.raises(IndexTypeError):
            compiled({"p": p, "b": b})

    def test_verifier_never_raises_on_oversized_index_array(self):
        # Nine-cell index array whose *read* slice (cells 1..8) is a
        # valid permutation, but whose extra cell 0 holds an
        # out-of-range value.  The whole-array scan is conservative,
        # so the call falls back to the checked schedule — and
        # succeeds, because the loops never read the bad cell.
        compiled = repro.compile(SCATTER)
        p = arr([0, 3, 1, 4, 2, 8, 6, 5, 7], lo=0)
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        VERIFY_STATS.reset()
        out = compiled({"p": p, "b": b})
        assert VERIFY_STATS.fallbacks == 1
        oracle = repro.evaluate(SCATTER, {"p": p, "b": b})
        assert cells(out, 1, 8) == cells(oracle, 1, 8)

    def test_parallel_rides_the_fast_path(self):
        compiled = repro.compile(
            SCATTER,
            options=CodegenOptions(parallel=True, parallel_threads=4),
        )
        assert compiled.report.strategy == "guarded"
        p = arr([3, 1, 4, 2, 8, 6, 5, 7])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        out = compiled({"p": p, "b": b})
        oracle = repro.evaluate(SCATTER, {"p": p, "b": b})
        assert cells(out, 1, 8) == cells(oracle, 1, 8)

    def test_explicit_checks_disable_guarding(self):
        compiled = repro.compile(
            SCATTER, options=CodegenOptions(bounds_checks=True,
                                            collision_checks=True,
                                            empties_check=True),
        )
        assert compiled.report.strategy == "thunkless"
        p = arr([3, 1, 4, 2, 8, 6, 5, 3])
        b = arr([10, 20, 30, 40, 50, 60, 70, 80])
        with pytest.raises(WriteCollisionError):
            compiled({"p": p, "b": b})


class TestGuardedAccum:
    def test_histogram_fast_path(self):
        compiled = repro.compile(HIST)
        assert compiled.report.strategy == "accumulate"
        assert compiled.report.subscripts.guarded
        k = arr([1, 2, 2, 3, 3, 3, 4, 5, 5, 1])
        VERIFY_STATS.reset()
        out = compiled({"k": k})
        assert VERIFY_STATS.fast_path == 1
        assert cells(out, 1, 5) == [2, 2, 3, 1, 2]

    def test_duplicates_accumulate_not_collide(self):
        compiled = repro.compile(HIST)
        k = arr([1] * 10)
        out = compiled({"k": k})
        assert cells(out, 1, 5) == [10, 0, 0, 0, 0]

    def test_accum_out_of_bounds_raises(self):
        compiled = repro.compile(HIST)
        k = arr([1, 2, 2, 3, 3, 3, 4, 5, 5, 6])
        VERIFY_STATS.reset()
        with pytest.raises(BoundsError):
            compiled({"k": k})
        assert VERIFY_STATS.fallbacks == 1

    def test_accum_non_int_raises(self):
        compiled = repro.compile(HIST)
        k = arr([1, 2, 2, 3, 3, 3, 4, 5, 5, 2.5])
        with pytest.raises(TypeError):
            compiled({"k": k})

    def test_matches_oracle(self):
        compiled = repro.compile(HIST)
        k = arr([5, 4, 3, 2, 1, 1, 2, 3, 4, 5])
        out = compiled({"k": k})
        oracle = repro.evaluate(HIST, {"k": k})
        assert cells(out, 1, 5) == cells(oracle, 1, 5)


class TestEdgeShapes:
    def test_empty_index_array(self):
        src = ("letrec* a = array (1,n) "
               "[ (p!i) := b!i | i <- [1..n] ] in a")
        compiled = repro.compile(src, params={"n": 0})
        out = compiled({
            "p": FlatArray(Bounds(1, 0), []),
            "b": FlatArray(Bounds(1, 0), []),
        })
        assert out.bounds.size() == 0

    def test_single_element(self):
        src = ("letrec* a = array (1,1) "
               "[ (p!i) := b!i | i <- [1..1] ] in a")
        compiled = repro.compile(src)
        out = compiled({"p": arr([1]), "b": arr([42])})
        assert out[1] == 42

    def test_single_element_out_of_bounds(self):
        src = ("letrec* a = array (1,1) "
               "[ (p!i) := b!i | i <- [1..1] ] in a")
        compiled = repro.compile(src)
        with pytest.raises(BoundsError):
            compiled({"p": arr([2]), "b": arr([42])})

    def test_scatter_vs_accum_on_duplicates(self):
        # The same duplicate key array: an error for the scatter,
        # semantics for the accumulation.
        scatter = repro.compile(
            "letrec* a = array (1,5) [ (k!i) := 1 | i <- [1..5] ] in a"
        )
        accum = repro.compile(
            "accumArray (\\a b -> a + b) 0 (1,5) "
            "[ (k!i) := 1 | i <- [1..5] ]"
        )
        k = arr([2, 2, 3, 4, 5])
        with pytest.raises(WriteCollisionError):
            scatter({"k": k})
        assert cells(accum({"k": k}), 1, 5) == [0, 2, 1, 1, 1]


class TestReporting:
    def test_explain_has_subscript_area(self):
        compiled = repro.compile(SCATTER, explain=True)
        subs = compiled.explanation.by_area("subscript")
        assert subs
        assert any("guarded kernel" in d.subject for d in subs)

    def test_summary_mentions_subscripts(self):
        compiled = repro.compile(SCATTER)
        assert "subscript" in compiled.report.summary()

    def test_unguardable_write_compiles_checked(self):
        # Opaque inner subscript: no verifier applies, so the kernel
        # carries per-store checks and still fails loudly when the
        # computed write position lands out of bounds.
        src = ("letrec* a = array (1,4) "
               "[ (p!(q!i)) := 1 | i <- [1..4] ] in a")
        compiled = repro.compile(src)
        assert compiled.report.strategy == "thunkless"
        assert compiled.report.checks.bounds_checks
        q = arr([1, 2, 3, 4])
        with pytest.raises(BoundsError):
            compiled({"p": arr([1, 2, 3, 9]), "q": q})
        with pytest.raises(TypeError):
            compiled({"p": arr([1, 2, 3, 3.5]), "q": q})

    def test_fingerprint_salt_bumped(self):
        from repro.service.fingerprint import PIPELINE_SALT

        assert PIPELINE_SALT == "repro-pipeline/8"
