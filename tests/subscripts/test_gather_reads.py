"""Checked gather reads: the loud-error contract extended to reads.

A subscript that is itself array data (``b!(p!i)``) is an opaque
gather — nothing at compile time bounds it.  The emitted read goes
through :func:`repro.codegen.support.read_gather`, which mirrors the
oracle's ``cells[bounds.index(subscript)]`` exactly: out-of-range
values raise :class:`BoundsError` instead of leaking a raw
``IndexError``, and negative values raise instead of silently
wrapping to the wrong cell through Python list indexing.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.codegen.support import FlatArray, read_gather
from repro.runtime.bounds import Bounds
from repro.runtime.errors import BoundsError

GATHER = "array (1,4) [ i := b!(p!i) | i <- [1..4] ]"
GATHER_N = "array (1,n) [ i := b!(p!i) | i <- [1..n] ]"
GATHER_2D = ("array ((1,1),(2,2)) "
             "[ (i,j) := m!(r!i, j) | i <- [1..2], j <- [1..2] ]")
GATHER_INPLACE = "bigupd a [* i := a!i + g!(p!i) | i <- [1..4] *]"


def arr(vals, lo=1):
    if not vals:
        return FlatArray(Bounds(1, 0), [])
    return FlatArray(Bounds(lo, lo + len(vals) - 1), list(vals))


def cells(result, lo, hi):
    return [result[i] for i in range(lo, hi + 1)]


class TestCheckedGather:
    def test_gather_read_is_checked(self):
        compiled = repro.compile(GATHER)
        assert "_gather(" in compiled.source

    def test_affine_read_stays_unchecked(self):
        compiled = repro.compile(
            "array (1,4) [ i := b!(i+1) | i <- [1..4] ]"
        )
        assert "_gather(" not in compiled.source

    def test_out_of_bounds_raises_bounds_error(self):
        compiled = repro.compile(GATHER)
        b = arr([float(v) for v in range(10, 90, 10)])
        with pytest.raises(BoundsError):
            compiled({"p": arr([1, 2, 3, 9]), "b": b})

    def test_negative_index_never_wraps(self):
        # Python list indexing would silently serve cell -1; the
        # oracle raises, so the compiled kernel must too.
        compiled = repro.compile(GATHER)
        b = arr([float(v) for v in range(10, 90, 10)])
        with pytest.raises(BoundsError):
            compiled({"p": arr([1, 2, 3, -1]), "b": b})

    def test_float_index_matches_oracle_type_error(self):
        compiled = repro.compile(GATHER)
        b = arr([float(v) for v in range(10, 90, 10)])
        env = {"p": arr([1, 2, 3, 2.5]), "b": b}
        with pytest.raises(TypeError):
            compiled(env)
        with pytest.raises(TypeError):
            # The oracle is lazy here: the error surfaces on read.
            cells(repro.evaluate(GATHER, env), 1, 4)

    def test_bool_index_keeps_oracle_value(self):
        # ``True`` is an int to the oracle's Bounds.index; the checked
        # read must accept it with the same value, not reject it.
        compiled = repro.compile(GATHER)
        b = arr([float(v) for v in range(10, 90, 10)])
        env = {"p": arr([1, 2, 3, True]), "b": b}
        out = compiled(env)
        oracle = repro.evaluate(GATHER, env)
        assert cells(out, 1, 4) == cells(oracle, 1, 4)

    def test_valid_gather_matches_oracle(self):
        compiled = repro.compile(GATHER)
        env = {"p": arr([3, 1, 4, 2]),
               "b": arr([float(v) for v in range(10, 90, 10)])}
        out = compiled(env)
        oracle = repro.evaluate(GATHER, env)
        assert cells(out, 1, 4) == cells(oracle, 1, 4)

    def test_2d_gather_checks_each_dimension(self):
        # The row subscript (3) aliases to a valid linear offset under
        # naive linearization; per-dimension checking must still raise.
        compiled = repro.compile(GATHER_2D)
        m = FlatArray(Bounds((1, 1), (2, 2)), [1.0, 2.0, 3.0, 4.0])
        out = compiled({"m": m, "r": arr([2, 1])})
        oracle = repro.evaluate(GATHER_2D, {"m": m, "r": arr([2, 1])})
        subs = [(i, j) for i in (1, 2) for j in (1, 2)]
        assert [out[s] for s in subs] == [oracle[s] for s in subs]
        with pytest.raises(BoundsError):
            compiled({"m": m, "r": arr([2, 3])})

    def test_inplace_gather_is_checked(self):
        compiled = repro.compile(GATHER_INPLACE, strategy="bigupd")
        assert compiled.report.strategy == "inplace"
        assert "_gather(" in compiled.source
        g = arr([10.0, 20.0, 30.0, 40.0])
        out = compiled({"a": arr([1.0, 2.0, 3.0, 4.0]), "g": g,
                        "p": arr([4, 3, 2, 1])})
        assert cells(out, 1, 4) == [41.0, 32.0, 23.0, 14.0]
        with pytest.raises(BoundsError):
            compiled({"a": arr([1.0, 2.0, 3.0, 4.0]), "g": g,
                      "p": arr([4, 3, 2, 5])})

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_gathers_match_oracle(self, data):
        n = data.draw(st.integers(1, 16), label="n")
        p_vals = data.draw(
            st.lists(st.integers(-2, n + 2), min_size=n, max_size=n),
            label="p",
        )
        b_vals = [float(10 * (k + 1)) for k in range(n)]
        compiled = repro.compile(GATHER_N, params={"n": n})
        env = {"n": n, "p": arr(p_vals), "b": arr(b_vals)}
        try:
            expected = cells(repro.evaluate(GATHER_N, env), 1, n)
        except BoundsError:
            with pytest.raises(BoundsError):
                compiled(env)
        else:
            assert cells(compiled(env), 1, n) == expected


class TestReadGatherHelper:
    def test_matches_oracle_semantics(self):
        bounds = Bounds(1, 4)
        cells_ = [10.0, 20.0, 30.0, 40.0]
        assert read_gather(bounds, cells_, 3) == 30.0
        with pytest.raises(BoundsError):
            read_gather(bounds, cells_, 5)
        with pytest.raises(BoundsError):
            read_gather(bounds, cells_, 0)

    def test_rank_mismatch_is_a_bounds_error(self):
        bounds = Bounds((1, 1), (2, 2))
        with pytest.raises(BoundsError):
            read_gather(bounds, [1.0] * 4, 1)
