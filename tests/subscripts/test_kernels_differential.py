"""Differential tests: irregular-subscript kernels vs the lazy oracle.

The three catalog kernels (permutation scatter, histogram, CSR SpMV)
must be bit-identical to the reference interpreter — including under
hypothesis-randomized index arrays, where the verifier's fast/fallback
decision varies per draw.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.codegen.support import FlatArray, VERIFY_STATS
from repro.kernels import (
    HISTOGRAM,
    PERMUTATION_SCATTER,
    SPMV_CSR,
    ref_histogram,
    ref_scatter,
    ref_spmv,
)
from repro.runtime.bounds import Bounds
from repro.runtime.errors import ArrayError


def arr(vals, lo=1):
    if not vals:
        return FlatArray(Bounds(1, 0), [])
    return FlatArray(Bounds(lo, lo + len(vals) - 1), list(vals))


def cells(result, lo, hi):
    return [result[i] for i in range(lo, hi + 1)]


class TestScatterKernel:
    def test_matches_oracle_and_reference(self):
        n = 12
        compiled = repro.compile(PERMUTATION_SCATTER, params={"n": n})
        assert compiled.report.strategy == "guarded"
        p_vals = [((5 * i) % n) + 1 for i in range(n)]  # gcd(5,12)=1
        b_vals = [10 * (i + 1) for i in range(n)]
        out = compiled({"p": arr(p_vals), "b": arr(b_vals)})
        oracle = repro.evaluate(PERMUTATION_SCATTER,
                                {"n": n, "p": arr(p_vals),
                                 "b": arr(b_vals)})
        assert cells(out, 1, n) == cells(oracle, 1, n)
        assert cells(out, 1, n) == ref_scatter(p_vals, b_vals, n)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_permutations(self, data):
        n = data.draw(st.integers(1, 24), label="n")
        perm = data.draw(st.permutations(list(range(1, n + 1))),
                         label="p")
        b_vals = data.draw(
            st.lists(st.integers(-50, 50), min_size=n, max_size=n),
            label="b",
        )
        compiled = repro.compile(PERMUTATION_SCATTER, params={"n": n})
        VERIFY_STATS.reset()
        out = compiled({"p": arr(perm), "b": arr(b_vals)})
        assert VERIFY_STATS.fast_path == 1
        assert cells(out, 1, n) == ref_scatter(perm, b_vals, n)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_index_arrays_match_oracle(self, data):
        # Arbitrary (possibly colliding / out-of-bounds) index arrays:
        # compiled and oracle must agree on value *or* on failure.
        n = data.draw(st.integers(1, 12), label="n")
        p_vals = data.draw(
            st.lists(st.integers(-2, n + 2), min_size=n, max_size=n),
            label="p",
        )
        b_vals = list(range(1, n + 1))
        compiled = repro.compile(PERMUTATION_SCATTER, params={"n": n})
        env = {"p": arr(p_vals), "b": arr(b_vals)}
        try:
            expected = cells(
                repro.evaluate(PERMUTATION_SCATTER,
                               {"n": n, **env}),
                1, n,
            )
            failure = None
        except ArrayError as exc:
            expected, failure = None, type(exc)
        if failure is None:
            assert cells(compiled(env), 1, n) == expected
        else:
            with pytest.raises(failure):
                compiled(env)


class TestHistogramKernel:
    def test_matches_oracle_and_reference(self):
        n, m = 20, 6
        compiled = repro.compile(HISTOGRAM, params={"n": n, "m": m})
        k_vals = [(i * 7) % m + 1 for i in range(n)]
        out = compiled({"k": arr(k_vals)})
        oracle = repro.evaluate(HISTOGRAM,
                                {"n": n, "m": m, "k": arr(k_vals)})
        assert cells(out, 1, m) == cells(oracle, 1, m)
        assert cells(out, 1, m) == ref_histogram(k_vals, m)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_keys(self, data):
        m = data.draw(st.integers(1, 8), label="m")
        n = data.draw(st.integers(1, 30), label="n")
        k_vals = data.draw(
            st.lists(st.integers(1, m), min_size=n, max_size=n),
            label="k",
        )
        compiled = repro.compile(HISTOGRAM, params={"n": n, "m": m})
        VERIFY_STATS.reset()
        out = compiled({"k": arr(k_vals)})
        assert VERIFY_STATS.fast_path == 1
        assert cells(out, 1, m) == ref_histogram(k_vals, m)
        assert sum(cells(out, 1, m)) == n


class TestSpmvKernel:
    def test_matches_oracle_and_reference(self):
        # 4x4 sparse matrix, 6 nonzeros (CSR, 1-based).
        ptr = [1, 3, 4, 6, 7]
        col = [1, 3, 2, 1, 4, 2]
        v = [5, 1, 2, 3, 4, 6]
        x = [1, 2, 3, 4]
        m = 4
        compiled = repro.compile(SPMV_CSR, params={"m": m})
        assert compiled.report.strategy == "thunkless"
        assert compiled.report.subscripts.gather_arrays == ("col",)
        env = {"ptr": arr(ptr), "col": arr(col), "v": arr(v),
               "x": arr(x)}
        out = compiled(env)
        oracle = repro.evaluate(SPMV_CSR, {"m": m, **env})
        assert cells(out, 1, m) == cells(oracle, 1, m)
        assert cells(out, 1, m) == ref_spmv(ptr, col, v, x, m)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_sparse_matrices(self, data):
        m = data.draw(st.integers(1, 6), label="m")
        ncols = data.draw(st.integers(1, 6), label="ncols")
        row_sizes = data.draw(
            st.lists(st.integers(0, 4), min_size=m, max_size=m),
            label="row_sizes",
        )
        nnz = sum(row_sizes)
        ptr = [1]
        for size in row_sizes:
            ptr.append(ptr[-1] + size)
        col = data.draw(
            st.lists(st.integers(1, ncols), min_size=nnz,
                     max_size=nnz),
            label="col",
        )
        v = data.draw(
            st.lists(st.integers(-9, 9), min_size=nnz, max_size=nnz),
            label="v",
        )
        x = data.draw(
            st.lists(st.integers(-9, 9), min_size=ncols,
                     max_size=ncols),
            label="x",
        )
        compiled = repro.compile(SPMV_CSR, params={"m": m})
        env = {"ptr": arr(ptr), "col": arr(col), "v": arr(v),
               "x": arr(x)}
        out = compiled(env)
        assert cells(out, 1, m) == ref_spmv(ptr, col, v, x, m)

    def test_empty_rows(self):
        # Every row empty: ptr is constant, the sum ranges are empty.
        m = 3
        compiled = repro.compile(SPMV_CSR, params={"m": m})
        env = {"ptr": arr([1, 1, 1, 1]), "col": arr([]),
               "v": arr([]), "x": arr([7, 8])}
        out = compiled(env)
        assert cells(out, 1, m) == [0, 0, 0]
