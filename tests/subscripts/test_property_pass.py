"""Unit tests for the subscript-property pass.

Covers static classification from a visible index-array
comprehension, runtime downgrades, gather detection, and guard
planning — no code generation here (see test_guarded_codegen).
"""

from repro.comprehension.build import build_array_comp
from repro.core.pipeline import _parse, find_array_comp
from repro.core.subscripts_indirect import (
    NONE,
    RUNTIME,
    STATIC,
    analyze_subscripts,
    classify_index_comp,
    find_indirect_writes,
    plan_guard,
)


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(_parse(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


SCATTER = "letrec* a = array (1,8) [ (p!i) := b!i | i <- [1..8] ] in a"


class TestFindIndirectWrites:
    def test_scatter_found(self):
        comp = comp_of(SCATTER)
        writes = find_indirect_writes(comp, None)
        assert len(writes) == 1
        assert writes[0].index_array == "p"
        assert writes[0].dim == 0
        assert writes[0].inner is not None

    def test_affine_write_is_not_indirect(self):
        comp = comp_of(
            "letrec* a = array (1,8) [ i := b!i | i <- [1..8] ] in a"
        )
        assert find_indirect_writes(comp, None) == []

    def test_opaque_inner_has_no_affine(self):
        src = ("letrec* a = array (1,8) "
               "[ (p!(q!i)) := 1 | i <- [1..8] ] in a")
        comp = comp_of(src)
        writes = find_indirect_writes(comp, None)
        assert writes and writes[0].inner is None


class TestClassifyIndexComp:
    def test_reversal_is_static_permutation(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := 9 - i | i <- [1..8] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == STATIC
        assert prop.injective and prop.monotone and prop.bounded
        assert prop.total

    def test_identity_is_static_permutation(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := i | i <- [1..8] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == STATIC and prop.total

    def test_monotone_but_out_of_bounds(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := 2*i | i <- [1..8] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == STATIC
        assert prop.injective and prop.monotone
        assert prop.bounded is False

    def test_constant_value_not_injective(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := 3 | i <- [1..8] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == STATIC
        assert prop.injective is False and prop.bounded is True

    def test_nonaffine_value_downgrades_to_runtime(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := i * i | i <- [1..8] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == RUNTIME
        assert prop.injective is None

    def test_guarded_clause_downgrades(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) "
            "[ i := i | i <- [1..8], i > 0 ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 8))
        assert prop.source == RUNTIME

    def test_rank2_mixed_radix_injective(self):
        # value = 4*(i-1) + j over a 4x4 box: row-major linearization,
        # injective into (1,16).
        pcomp = comp_of(
            "letrec* p = array ((1,1),(4,4)) "
            "[ (i,j) := 4*(i-1) + j | i <- [1..4], j <- [1..4] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 16))
        assert prop.source == STATIC
        assert prop.injective and prop.bounded and prop.total

    def test_rank2_colliding_coefficients(self):
        # value = i + j collides (1+2 == 2+1).
        pcomp = comp_of(
            "letrec* p = array ((1,1),(4,4)) "
            "[ (i,j) := i + j | i <- [1..4], j <- [1..4] ] in p"
        )
        prop = classify_index_comp(pcomp, (1, 16))
        assert prop.source == STATIC
        assert prop.injective is False


class TestAnalyzeSubscripts:
    def test_opaque_index_array_is_runtime(self):
        report = analyze_subscripts(comp_of(SCATTER))
        assert report.has_indirect
        prop = report.properties["p"]
        assert prop.source == RUNTIME
        assert report.verifiable == frozenset({"p"})
        assert report.static_injective == frozenset()

    def test_visible_comp_gives_static_proof(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := 9 - i | i <- [1..8] ] in p"
        )
        report = analyze_subscripts(comp_of(SCATTER),
                                    index_comps={"p": pcomp})
        assert report.static_injective == frozenset({"p"})
        assert report.static_bounded == frozenset({"p"})

    def test_gathers_recorded(self):
        comp = comp_of(
            "letrec* y = array (1,4) "
            "[ i := x!(col!i) | i <- [1..4] ] in y"
        )
        report = analyze_subscripts(comp)
        assert not report.has_indirect
        assert report.gather_arrays == ("col",)

    def test_opaque_inner_is_none_source(self):
        comp = comp_of(
            "letrec* a = array (1,8) "
            "[ (p!(q!i)) := 1 | i <- [1..8] ] in a"
        )
        report = analyze_subscripts(comp)
        assert report.properties["p"].source == NONE

    def test_decisions_populated(self):
        report = analyze_subscripts(comp_of(SCATTER))
        assert any(v == "fallback" for _, v, _ in report.decisions)


class TestPlanGuard:
    def test_scatter_guard(self):
        comp = comp_of(SCATTER)
        report = analyze_subscripts(comp)
        guard = plan_guard(comp, report, mode="scatter")
        assert guard is not None
        assert guard.mode == "scatter"
        (spec,) = guard.verify
        assert spec.array == "p" and spec.need_injective
        assert (spec.inner_lo, spec.inner_hi) == (1, 8)
        assert guard.indirect_dims

    def test_accum_guard_bounds_only(self):
        comp = comp_of(
            "letrec* h = array (1,5) [ (k!i) := 1 | i <- [1..10] ] in h"
        )
        report = analyze_subscripts(comp)
        guard = plan_guard(comp, report, mode="accum")
        assert guard is not None
        (spec,) = guard.verify
        assert not spec.need_injective

    def test_static_proof_leaves_nothing_to_verify(self):
        pcomp = comp_of(
            "letrec* p = array (1,8) [ i := 9 - i | i <- [1..8] ] in p"
        )
        comp = comp_of(SCATTER)
        report = analyze_subscripts(comp, index_comps={"p": pcomp})
        guard = plan_guard(comp, report, mode="scatter")
        assert guard is not None and guard.verify == ()

    def test_opaque_inner_refuses_guard(self):
        comp = comp_of(
            "letrec* a = array (1,8) "
            "[ (p!(q!i)) := 1 | i <- [1..8] ] in a"
        )
        report = analyze_subscripts(comp)
        assert plan_guard(comp, report, mode="scatter") is None

    def test_unknown_trip_count_refuses_guard(self):
        comp = comp_of(
            "letrec* a = array (1,n) [ (p!i) := b!i | i <- [1..n] ] in a"
        )
        report = analyze_subscripts(comp)
        assert plan_guard(comp, report, mode="scatter") is None
