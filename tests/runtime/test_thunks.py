"""Tests for repro.runtime.thunks (memoization, blackholing, stats)."""

import pytest

from repro.runtime.errors import BlackHoleError
from repro.runtime.thunks import STATS, Thunk, delay, force


class TestForce:
    def test_non_thunk_passes_through(self):
        assert force(42) == 42
        assert force("x") == "x"
        assert force(None) is None

    def test_thunk_computes(self):
        t = Thunk(lambda: 10 + 7)
        assert force(t) == 17

    def test_memoization_runs_once(self):
        calls = []
        t = Thunk(lambda: calls.append(1) or 99)
        assert t.force() == 99
        assert t.force() == 99
        assert len(calls) == 1

    def test_nested_thunks_collapse(self):
        t = Thunk(lambda: Thunk(lambda: Thunk(lambda: 5)))
        assert force(t) == 5

    def test_evaluated_flag(self):
        t = Thunk(lambda: 1)
        assert not t.evaluated
        t.force()
        assert t.evaluated

    def test_delay_synonym(self):
        assert force(delay(lambda: 3)) == 3


class TestBlackHole:
    def test_self_dependent_thunk_raises(self):
        cell = []
        cell.append(Thunk(lambda: cell[0].force() + 1))
        with pytest.raises(BlackHoleError):
            cell[0].force()

    def test_mutual_cycle_raises(self):
        cell = {}
        cell["a"] = Thunk(lambda: cell["b"].force())
        cell["b"] = Thunk(lambda: cell["a"].force())
        with pytest.raises(BlackHoleError):
            cell["a"].force()

    def test_error_leaves_thunk_rerunnable(self):
        state = {"fail": True}

        def compute():
            if state["fail"]:
                raise ValueError("transient")
            return 11

        t = Thunk(compute)
        with pytest.raises(ValueError):
            t.force()
        state["fail"] = False
        assert t.force() == 11


class TestStats:
    def test_counters(self):
        STATS.reset()
        t1 = Thunk(lambda: 1)
        t2 = Thunk(lambda: 2)
        assert STATS.created == 2
        t1.force()
        t1.force()
        t2.force()
        assert STATS.forced == 2
        assert STATS.hits == 1

    def test_snapshot(self):
        STATS.reset()
        Thunk(lambda: 0)
        snap = STATS.snapshot()
        assert snap == {"created": 1, "forced": 0, "hits": 0}

    def test_reset(self):
        Thunk(lambda: 0)
        STATS.reset()
        assert STATS.created == 0
        assert STATS.forced == 0
        assert STATS.hits == 0
