"""Tests for incremental arrays: copy / trailer / refcount (paper §9)."""

import pytest

from repro.runtime.incremental import (
    STATS,
    RefCountedArray,
    TrailerArray,
    VersionedArray,
    bigupd,
    upd,
)


class TestVersionedCopySemantics:
    def test_update_preserves_old_version(self):
        a = VersionedArray.from_list((1, 3), [1, 2, 3])
        b = upd(a, 2, 99)
        assert a.to_list() == [1, 2, 3]
        assert b.to_list() == [1, 99, 3]

    def test_every_update_copies_whole_array(self):
        STATS.reset()
        a = VersionedArray.from_list((1, 10), list(range(10)))
        a = upd(a, 1, -1)
        a = upd(a, 2, -2)
        assert STATS.arrays_copied == 2
        assert STATS.cells_copied == 20

    def test_bigupd_fold_semantics(self):
        a = VersionedArray.from_list((1, 4), [0, 0, 0, 0])
        b = bigupd(a, [(1, 10), (3, 30), (1, 11)])
        assert b.to_list() == [11, 0, 30, 0]  # later pair wins (foldl)
        assert a.to_list() == [0, 0, 0, 0]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VersionedArray.from_list((1, 3), [1, 2])


class TestTrailers:
    def test_newest_version_updates_in_constant_space(self):
        STATS.reset()
        a = TrailerArray.from_list((1, 5), [0, 0, 0, 0, 0])
        b = upd(a, 3, 7)
        c = upd(b, 1, 9)
        assert STATS.arrays_copied == 0  # single-threaded: no copies
        assert c.to_list() == [9, 0, 7, 0, 0]

    def test_old_versions_remain_readable(self):
        a = TrailerArray.from_list((1, 3), [1, 2, 3])
        b = upd(a, 2, 20)
        c = upd(b, 2, 200)
        assert a.at(2) == 2
        assert b.at(2) == 20
        assert c.at(2) == 200
        assert a.to_list() == [1, 2, 3]

    def test_updating_old_version_copies(self):
        STATS.reset()
        a = TrailerArray.from_list((1, 4), [1, 2, 3, 4])
        upd(a, 1, 10)          # a becomes an old version
        d = upd(a, 4, 40)      # update through the trailer: rebuild
        assert STATS.arrays_copied == 1
        assert d.to_list() == [1, 2, 3, 40]
        assert d.at(1) == 1    # the other update is not visible

    def test_long_trailer_chain(self):
        a = TrailerArray.from_list((1, 2), [0, 0])
        versions = [a]
        for k in range(1, 6):
            versions.append(upd(versions[-1], 1, k))
        for k, version in enumerate(versions):
            assert version.at(1) == (0 if k == 0 else k)


class TestRefCounting:
    def test_unshared_updates_in_place(self):
        STATS.reset()
        a = RefCountedArray.from_list((1, 3), [1, 2, 3])
        b = upd(a, 1, 9)
        assert b is a  # mutated in place
        assert STATS.arrays_copied == 0

    def test_shared_update_copies(self):
        STATS.reset()
        a = RefCountedArray.from_list((1, 3), [1, 2, 3])
        a.share()
        b = upd(a, 1, 9)
        assert b is not a
        assert a.to_list() == [1, 2, 3]
        assert b.to_list() == [9, 2, 3]
        assert STATS.arrays_copied == 1

    def test_share_release_cycle(self):
        a = RefCountedArray.from_list((1, 1), [0])
        a.share()
        assert a.refcount == 2
        a.release()
        assert a.refcount == 1
        b = upd(a, 1, 5)
        assert b is a

    def test_release_dead_array_rejected(self):
        a = RefCountedArray.from_list((1, 1), [0])
        a.release()
        with pytest.raises(ValueError):
            a.release()

    def test_copy_decrements_original_count(self):
        a = RefCountedArray.from_list((1, 1), [0])
        a.share()
        upd(a, 1, 1)
        assert a.refcount == 1


class TestBigupdAcrossRepresentations:
    def test_same_result_all_strategies(self):
        pairs = [(2, 20), (4, 40), (2, 21)]
        base = [1, 2, 3, 4, 5]
        expected = [1, 21, 3, 40, 5]
        for cls in (VersionedArray, TrailerArray, RefCountedArray):
            a = cls.from_list((1, 5), list(base))
            assert bigupd(a, pairs).to_list() == expected

    def test_copy_traffic_ordering(self):
        # Copy semantics must copy the most, refcount (single-threaded)
        # the least — the paper's motivation for update analysis.
        base = list(range(50))
        pairs = [(i, -i) for i in range(1, 26)]

        STATS.reset()
        bigupd(VersionedArray.from_list((0, 49), list(base)), pairs)
        copy_cells = STATS.cells_copied

        STATS.reset()
        bigupd(TrailerArray.from_list((0, 49), list(base)), pairs)
        trailer_cells = STATS.cells_copied

        STATS.reset()
        bigupd(RefCountedArray.from_list((0, 49), list(base)), pairs)
        refcount_cells = STATS.cells_copied

        assert copy_cells == 25 * 50
        assert trailer_cells == 0
        assert refcount_cells == 0
