"""Tests for strict arrays: a!i = bottom implies a = bottom (paper §2)."""

import pytest

from repro.runtime.errors import (
    BlackHoleError,
    UndefinedElementError,
    WriteCollisionError,
)
from repro.runtime.nonstrict import recursive_array
from repro.runtime.strict import StrictArray


class TestStrictness:
    def test_all_elements_evaluated_at_construction(self):
        ran = []
        StrictArray((1, 2), [
            (1, lambda: ran.append(1) or 1),
            (2, lambda: ran.append(2) or 2),
        ])
        assert sorted(ran) == [1, 2]

    def test_failing_element_fails_whole_array(self):
        def boom():
            raise ValueError("element bottom")

        with pytest.raises(ValueError):
            StrictArray((1, 2), [(1, 0), (2, boom)])

    def test_empty_element_fails_whole_array(self):
        with pytest.raises(UndefinedElementError):
            StrictArray((1, 3), [(1, 0), (3, 0)])

    def test_collision_fails(self):
        with pytest.raises(WriteCollisionError):
            StrictArray((1, 2), [(1, 0), (1, 1), (2, 2)])

    def test_recursively_defined_strict_array_is_bottom(self):
        # Paper §2: a recursively defined strict array never terminates
        # (here: blackholes), even when a lazy version would be fine.
        def build(a):
            return [(1, 1)] + [
                (i, (lambda i=i: a[i - 1] + 1)) for i in range(2, 4)
            ]

        lazy = recursive_array((1, 3), build)
        assert lazy.to_list() == [1, 2, 3]  # the lazy version works

        def strict_build():
            cell = []

            class Proxy:
                def __getitem__(self, s):
                    return cell[0].at(s)

            proxy = Proxy()
            pairs = [(1, 1)] + [
                (i, (lambda i=i: proxy[i - 1] + 1)) for i in range(2, 4)
            ]
            cell.append(StrictArray((1, 3), pairs))
            return cell[0]

        # The strict constructor forces elements while the array is
        # still being built: the recursive reference is bottom.
        with pytest.raises((BlackHoleError, IndexError)):
            strict_build()


class TestAccess:
    def test_values(self):
        a = StrictArray((1, 3), [(2, "b"), (1, "a"), (3, "c")])
        assert a.to_list() == ["a", "b", "c"]
        assert a[2] == "b"
        assert list(a.assocs()) == [(1, "a"), (2, "b"), (3, "c")]
        assert len(a) == 3

    def test_two_dimensional(self):
        a = StrictArray(((1, 1), (2, 2)), [
            ((i, j), 10 * i + j) for i in (1, 2) for j in (1, 2)
        ])
        assert a.at((2, 1)) == 21
        assert list(a.elems()) == [11, 12, 21, 22]
