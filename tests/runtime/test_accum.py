"""Tests for accumulated arrays (paper §3, §7)."""

import operator

from repro.runtime.accum import accum_array


class TestAccumArray:
    def test_histogram(self):
        data = [1, 2, 2, 3, 3, 3, 0, 0]
        h = accum_array(operator.add, 0, (0, 3), ((d, 1) for d in data))
        assert h.to_list() == [2, 1, 2, 3]

    def test_default_fills_untouched_elements(self):
        a = accum_array(operator.add, -1, (1, 4), [(2, 5)])
        assert a.to_list() == [-1, 4, -1, -1]

    def test_multiple_definitions_combined(self):
        a = accum_array(operator.add, 0, (1, 2), [(1, 1), (1, 2), (1, 3)])
        assert a.at(1) == 6

    def test_non_commutative_order_preserved(self):
        # Paper §7: with a non-commutative combining function the order
        # of the subscript/value pairs is semantically significant.
        def f(acc, v):
            return acc * 10 + v

        a = accum_array(f, 0, (1, 1), [(1, 1), (1, 2), (1, 3)])
        assert a.at(1) == 123
        b = accum_array(f, 0, (1, 1), [(1, 3), (1, 2), (1, 1)])
        assert b.at(1) == 321
        assert a.at(1) != b.at(1)

    def test_max_accumulation(self):
        a = accum_array(max, float("-inf"), (0, 1),
                        [(0, 3.0), (0, 7.0), (1, -2.0), (0, 5.0)])
        assert a.to_list() == [7.0, -2.0]

    def test_two_dimensional(self):
        pairs = [((i % 2, i % 3), 1) for i in range(12)]
        a = accum_array(operator.add, 0, ((0, 0), (1, 2)), pairs)
        assert sum(a.to_list()) == 12
        assert a.at((0, 0)) == 2

    def test_callable_values_forced(self):
        a = accum_array(operator.add, 0, (1, 1), [(1, lambda: 9)])
        assert a.at(1) == 9

    def test_result_is_strict(self):
        a = accum_array(operator.add, 0, (1, 2), [])
        assert a.to_list() == [0, 0]
