"""Tests for force_elements and letrec* (paper §2)."""

import pytest

from repro.runtime.errors import BlackHoleError, UndefinedElementError
from repro.runtime.force import force_elements, letrec_star
from repro.runtime.nonstrict import NonStrictArray
from repro.runtime.strict import StrictArray


class TestForceElements:
    def test_strictifies(self):
        a = NonStrictArray((1, 3), [(i, (lambda i=i: i * i)) for i in (1, 2, 3)])
        s = force_elements(a)
        assert isinstance(s, StrictArray)
        assert s.to_list() == [1, 4, 9]

    def test_bottom_element_makes_result_bottom(self):
        a = NonStrictArray((1, 2), [(1, 0)])  # element 2 is an empty
        with pytest.raises(UndefinedElementError):
            force_elements(a)

    def test_paper_equation(self):
        # (force-elements a)!i == a!i when no element is bottom.
        a = NonStrictArray((1, 4), [(i, i + 100) for i in range(1, 5)])
        s = force_elements(a)
        for i in range(1, 5):
            assert s.at(i) == a.at(i)


class TestLetrecStar:
    def test_recursive_definition_forced(self):
        s = letrec_star((1, 5), lambda a: (
            [(1, 1)]
            + [(i, (lambda i=i: a[i - 1] * 3)) for i in range(2, 6)]
        ))
        assert isinstance(s, StrictArray)
        assert s.to_list() == [1, 3, 9, 27, 81]

    def test_hidden_self_dependence_surfaces_immediately(self):
        # Paper §2: with letrec*, a genuine cyclic dependence appears
        # as bottom at definition time, not later at some use site.
        with pytest.raises(BlackHoleError):
            letrec_star((1, 2), lambda a: [
                (1, lambda: a[2]),
                (2, lambda: a[1]),
            ])

    def test_missing_definition_surfaces_immediately(self):
        with pytest.raises(UndefinedElementError):
            letrec_star((1, 3), lambda a: [(1, 0), (2, 0)])
