"""Tests for repro.runtime.bounds (Haskell Ix-style bounds)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.bounds import Bounds
from repro.runtime.errors import BoundsError


class TestConstruction:
    def test_one_dimensional(self):
        b = Bounds(1, 10)
        assert b.rank == 1
        assert b.size() == 10

    def test_two_dimensional(self):
        b = Bounds((1, 1), (3, 4))
        assert b.rank == 2
        assert b.size() == 12

    def test_three_dimensional(self):
        b = Bounds((0, 0, 0), (1, 2, 3))
        assert b.size() == 2 * 3 * 4

    def test_empty_range(self):
        assert Bounds(5, 4).size() == 0

    def test_empty_dimension_zeroes_size(self):
        assert Bounds((1, 5), (3, 4)).size() == 0

    def test_singleton(self):
        b = Bounds(7, 7)
        assert b.size() == 1
        assert list(b.range()) == [7]

    def test_negative_lower_bound(self):
        b = Bounds(-3, 3)
        assert b.size() == 7
        assert b.index(-3) == 0
        assert b.index(3) == 6

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Bounds((1, 1), 5)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            Bounds(1.5, 3)


class TestIndexing:
    def test_row_major_order(self):
        b = Bounds((1, 1), (2, 3))
        subs = list(b.range())
        assert subs == [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)]
        for offset, sub in enumerate(subs):
            assert b.index(sub) == offset

    def test_one_dim_range_yields_ints(self):
        assert list(Bounds(2, 5).range()) == [2, 3, 4, 5]

    def test_out_of_bounds_raises(self):
        b = Bounds((1, 1), (3, 3))
        with pytest.raises(BoundsError):
            b.index((0, 2))
        with pytest.raises(BoundsError):
            b.index((2, 4))

    def test_wrong_rank_subscript_raises(self):
        with pytest.raises(BoundsError):
            Bounds((1, 1), (3, 3)).index(2)

    def test_in_range(self):
        b = Bounds((1, 1), (3, 3))
        assert b.in_range((2, 2))
        assert not b.in_range((3, 4))
        assert (1, 3) in b
        assert (4, 1) not in b

    def test_extent(self):
        b = Bounds((1, 2), (4, 2))
        assert b.extent(0) == 4
        assert b.extent(1) == 1


class TestEquality:
    def test_equal(self):
        assert Bounds(1, 5) == Bounds(1, 5)
        assert Bounds((1, 1), (2, 2)) == Bounds((1, 1), (2, 2))

    def test_unequal(self):
        assert Bounds(1, 5) != Bounds(1, 6)

    def test_hashable(self):
        assert len({Bounds(1, 5), Bounds(1, 5), Bounds(1, 6)}) == 2

    def test_normalize(self):
        assert Bounds(1, 5).normalize((3,)) == 3
        assert Bounds((1, 1), (2, 2)).normalize((1, 2)) == (1, 2)


@given(
    lo=st.integers(-20, 20),
    extent=st.integers(0, 30),
)
def test_index_is_bijective_1d(lo, extent):
    b = Bounds(lo, lo + extent - 1)
    offsets = [b.index(s) for s in b.range()]
    assert offsets == list(range(b.size()))


@given(
    lo1=st.integers(-5, 5),
    lo2=st.integers(-5, 5),
    e1=st.integers(1, 8),
    e2=st.integers(1, 8),
)
def test_index_is_bijective_2d(lo1, lo2, e1, e2):
    b = Bounds((lo1, lo2), (lo1 + e1 - 1, lo2 + e2 - 1))
    offsets = [b.index(s) for s in b.range()]
    assert offsets == list(range(b.size()))
    assert b.size() == e1 * e2
