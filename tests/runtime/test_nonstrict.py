"""Tests for non-strict monolithic arrays (paper §2, §3 semantics)."""

import pytest

from repro.runtime.bounds import Bounds
from repro.runtime.errors import (
    BlackHoleError,
    BoundsError,
    UndefinedElementError,
    WriteCollisionError,
)
from repro.runtime.nonstrict import NonStrictArray, recursive_array
from repro.runtime.thunks import Thunk


class TestConstruction:
    def test_plain_values(self):
        a = NonStrictArray((1, 3), [(1, 10), (2, 20), (3, 30)])
        assert a.to_list() == [10, 20, 30]

    def test_callable_values_are_delayed(self):
        ran = []
        a = NonStrictArray((1, 2), [
            (1, lambda: ran.append(1) or "one"),
            (2, lambda: ran.append(2) or "two"),
        ])
        assert ran == []  # nothing evaluated at construction
        assert a.at(2) == "two"
        assert ran == [2]

    def test_accepts_bounds_object(self):
        a = NonStrictArray(Bounds((0, 0), (1, 1)),
                           [((i, j), i + j) for i in (0, 1) for j in (0, 1)])
        assert a.at((1, 1)) == 2

    def test_collision_detected_at_construction(self):
        with pytest.raises(WriteCollisionError):
            NonStrictArray((1, 3), [(1, 0), (1, 1)])

    def test_out_of_bounds_subscript_rejected(self):
        with pytest.raises(BoundsError):
            NonStrictArray((1, 3), [(4, 0)])

    def test_order_of_pairs_is_irrelevant(self):
        a = NonStrictArray((1, 3), [(3, "c"), (1, "a"), (2, "b")])
        assert a.to_list() == ["a", "b", "c"]


class TestDemand:
    def test_empty_element_raises_on_demand_only(self):
        a = NonStrictArray((1, 3), [(1, 0), (3, 0)])
        assert a.at(1) == 0  # fine
        with pytest.raises(UndefinedElementError):
            a.at(2)

    def test_getitem(self):
        a = NonStrictArray((1, 2), [(1, 5), (2, 6)])
        assert a[1] == 5

    def test_is_defined_and_is_evaluated(self):
        a = NonStrictArray((1, 2), [(1, lambda: 9)])
        assert a.is_defined(1)
        assert not a.is_defined(2)
        assert not a.is_evaluated(1)
        a.at(1)
        assert a.is_evaluated(1)

    def test_memoization_of_elements(self):
        runs = []
        a = NonStrictArray((1, 1), [(1, lambda: runs.append(1) or 7)])
        a.at(1)
        a.at(1)
        assert len(runs) == 1

    def test_thunk_values_accepted(self):
        a = NonStrictArray((1, 1), [(1, Thunk(lambda: 3))])
        assert a.at(1) == 3

    def test_assocs_and_indices(self):
        a = NonStrictArray((1, 2), [(1, "x"), (2, "y")])
        assert list(a.indices()) == [1, 2]
        assert list(a.assocs()) == [(1, "x"), (2, "y")]
        assert len(a) == 2


class TestRecursive:
    def test_simple_recurrence(self):
        a = recursive_array((1, 5), lambda a: (
            [(1, 1)]
            + [(i, (lambda i=i: a[i - 1] * 2)) for i in range(2, 6)]
        ))
        assert a.to_list() == [1, 2, 4, 8, 16]

    def test_demand_order_does_not_matter(self):
        a = recursive_array((1, 5), lambda a: (
            [(1, 1)]
            + [(i, (lambda i=i: a[i - 1] + 1)) for i in range(2, 6)]
        ))
        # Demand the last element first: dependencies pull in the rest.
        assert a.at(5) == 5
        assert a.at(2) == 2

    def test_backward_recurrence(self):
        a = recursive_array((1, 4), lambda a: (
            [(4, 10)]
            + [(i, (lambda i=i: a[i + 1] - 1)) for i in range(1, 4)]
        ))
        assert a.to_list() == [7, 8, 9, 10]

    def test_self_dependent_element_is_blackhole(self):
        a = recursive_array((1, 1), lambda a: [(1, lambda: a[1])])
        with pytest.raises(BlackHoleError):
            a.at(1)

    def test_proxy_exposes_bounds(self):
        captured = {}

        def build(a):
            captured["proxy"] = a
            return [(1, 0)]

        result = recursive_array((1, 1), build)
        assert captured["proxy"].bounds == result.bounds

    def test_wavefront_two_dimensional(self):
        n = 4

        def build(a):
            pairs = [((1, j), 1) for j in range(1, n + 1)]
            pairs += [((i, 1), 1) for i in range(2, n + 1)]
            pairs += [
                ((i, j), (lambda i=i, j=j:
                          a[(i - 1, j)] + a[(i, j - 1)] + a[(i - 1, j - 1)]))
                for i in range(2, n + 1)
                for j in range(2, n + 1)
            ]
            return pairs

        a = recursive_array(((1, 1), (n, n)), build)
        assert a.at((2, 2)) == 3
        assert a.at((3, 3)) == 13
        assert a.at((4, 4)) == 63
