"""Property-based tests for in-place compilation (paper §9).

Random uniform stencils are compiled for in-place execution and
compared against a pure (fresh-buffer) reference computed from the
same source.  Whatever mix of direct reads, hoists, snapshot rings, or
the whole-copy fallback the planner chooses, the values must agree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FlatArray, compile_array_inplace
from repro.runtime import incremental


@st.composite
def stencil_case_1d(draw):
    n = draw(st.integers(4, 12))
    offsets = draw(
        st.lists(
            st.integers(-3, 3).filter(lambda d: d != 0),
            min_size=1, max_size=3, unique=True,
        )
    )
    margin = max(abs(d) for d in offsets)
    if margin + 2 > n:
        n = margin + 3
    return n, offsets


def render_stencil_1d(n, offsets):
    margin = max(abs(d) for d in offsets)
    low = 1 + margin
    high = n - margin
    reads = " + ".join(f"u!(i + {d})" for d in offsets)
    return (
        f"array (1,{n}) [* i := {reads} + 0.5 "
        f"| i <- [{low}..{high}] *]"
    )


def reference_1d(cells, n, offsets):
    margin = max(abs(d) for d in offsets)
    out = list(cells)
    for i in range(1 + margin, n - margin + 1):
        out[i - 1] = sum(cells[i + d - 1] for d in offsets) + 0.5
    return out


@settings(max_examples=100, deadline=None)
@given(stencil_case_1d())
def test_random_1d_stencils_inplace(case):
    n, offsets = case
    src = render_stencil_1d(n, offsets)
    compiled = compile_array_inplace(src, "u", params={"n": n})
    cells = [float((k * 13 + 5) % 11) for k in range(n)]
    arr = FlatArray.from_list((1, n), list(cells))
    out = compiled({"u": arr})
    assert out.to_list() == pytest.approx(reference_1d(cells, n, offsets))


@st.composite
def stencil_case_2d(draw):
    m = draw(st.integers(4, 8))
    offsets = draw(
        st.lists(
            st.tuples(st.integers(-1, 1), st.integers(-1, 1)).filter(
                lambda d: d != (0, 0)
            ),
            min_size=1, max_size=4, unique=True,
        )
    )
    return m, offsets


def render_stencil_2d(m, offsets):
    reads = " + ".join(
        f"u!(i + {di}, j + {dj})" for di, dj in offsets
    )
    return (
        f"array ((1,1),({m},{m})) "
        f"[* (i,j) := {reads} | i <- [2..{m}-1], j <- [2..{m}-1] *]"
    )


def reference_2d(cells, m, offsets):
    def at(r, c):
        return cells[(r - 1) * m + (c - 1)]

    out = list(cells)
    for r in range(2, m):
        for c in range(2, m):
            out[(r - 1) * m + (c - 1)] = sum(
                at(r + di, c + dj) for di, dj in offsets
            )
    return out


@settings(max_examples=100, deadline=None)
@given(stencil_case_2d())
def test_random_2d_stencils_inplace(case):
    m, offsets = case
    src = render_stencil_2d(m, offsets)
    compiled = compile_array_inplace(src, "u", params={"m": m})
    cells = [float((k * 7 + 3) % 9) for k in range(m * m)]
    arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
    out = compiled({"u": arr})
    assert out.to_list() == pytest.approx(reference_2d(cells, m, offsets))


@settings(max_examples=50, deadline=None)
@given(stencil_case_2d())
def test_copy_traffic_bounded_by_buffers(case):
    """Node-splitting traffic is bounded by (rings x interior): at most
    one scalar-ring copy and one row-ring copy per written element —
    i.e. O(n) per outer iteration, the paper's factor-n claim.  (At
    tiny sizes the constant can exceed one whole-array copy; the
    asymptotic comparison is asserted in benchmark E7.)"""
    m, offsets = case
    src = render_stencil_2d(m, offsets)
    compiled = compile_array_inplace(src, "u", params={"m": m})
    cells = [0.0] * (m * m)
    arr = FlatArray.from_list(((1, 1), (m, m)), cells)
    incremental.STATS.reset()
    compiled({"u": arr})
    interior = (m - 2) ** 2
    max_distance = 3  # generator offsets are within [-1, 1] per level
    assert incremental.STATS.cells_copied <= 2 * max_distance * interior


def test_mixed_flow_and_anti_fuzz():
    """Gauss-Seidel-like mixes at several sizes and offsets."""
    for m in (5, 7, 10):
        src = f"""
        letrec a = array ((1,1),({m},{m}))
          [* (i,j) := 0.25 * (a!(i-1,j) + a!(i,j-1)
                              + u!(i+1,j) + u!(i,j+1))
           | i <- [2..{m}-1], j <- [2..{m}-1] *]
        in a
        """
        from repro.kernels import ref_gauss_seidel

        compiled = compile_array_inplace(src, "u", params={"m": m})
        cells = [float((k * 3 + 1) % 7) for k in range(m * m)]
        arr = FlatArray.from_list(((1, 1), (m, m)), list(cells))
        out = compiled({"u": arr})
        assert out.to_list() == pytest.approx(ref_gauss_seidel(cells, m))
