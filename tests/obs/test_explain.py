"""Decision-trace golden tests: the explain layer tells the truth."""

import json

import repro
from repro.kernels import (
    PROGRAM_JACOBI_STEPS,
    SOR,
    SOR_MONOLITHIC,
    WAVEFRONT_F,
)
from repro.obs.explain import (
    ACCEPTED,
    FALLBACK,
    INFO,
    REJECTED,
    Decision,
    Explanation,
    explain,
    explain_report,
)

#: One index write per iteration onto a fixed cell: collision CERTAIN.
COLLIDING = "letrec* a = array (1,6) [ 3 := i | i <- [1..6] ] in a"


def lines_for(explanation, area):
    return [str(d) for d in explanation.by_area(area)]


class TestExplanationShape:
    def test_decision_rendering(self):
        d = Decision("schedule", "loop i", ACCEPTED, "because")
        assert str(d) == "[schedule] loop i: accepted — because"
        assert d.to_dict()["verdict"] == ACCEPTED

    def test_json_round_trip(self):
        ex = explain(WAVEFRONT_F, params={"n": 6})
        blob = json.dumps(ex.to_json())
        data = json.loads(blob)
        assert data["kind"] == "definition"
        assert all(set(d) == {"area", "subject", "verdict", "reason"}
                   for d in data["decisions"])

    def test_render_groups_by_area(self):
        ex = Explanation(kind="definition")
        ex.add("schedule", "s", ACCEPTED, "r1")
        ex.add("checks", "c", FALLBACK, "r2")
        text = ex.render()
        assert text.index("schedule:") < text.index("checks:")


class TestSorInplaceGolden:
    """SOR with old_array='u': §9 in-place accepted, and it says so."""

    def test_inplace_accepted(self):
        ex = explain(SOR, params={"n": 8, "omega": 1.0}, old_array="u")
        [decision] = ex.by_area("inplace")
        assert decision.verdict == ACCEPTED
        assert "input's buffer" in decision.reason
        [strategy] = ex.by_area("strategy")
        assert strategy.verdict == ACCEPTED
        assert "inplace" in strategy.reason

    def test_schedule_directions_surface(self):
        ex = explain(SOR, params={"n": 8, "omega": 1.0}, old_array="u")
        [schedule] = ex.by_area("schedule")
        assert schedule.verdict == ACCEPTED
        assert "i forward" in schedule.reason

    def test_matches_report_explanation(self):
        compiled = repro.compile(SOR, strategy="inplace", old_array="u",
                                 params={"n": 8, "omega": 1.0})
        from_report = explain_report(compiled.report)
        direct = explain(SOR, params={"n": 8, "omega": 1.0},
                         old_array="u")
        assert ([d.to_dict() for d in from_report.decisions]
                == [d.to_dict() for d in direct.decisions])


class TestCollisionRejectedGolden:
    """A certain write collision is a *rejected* decision, not a crash."""

    def test_rejection_with_reason(self):
        ex = explain(COLLIDING)
        [compile_decision] = ex.by_area("compile")
        assert compile_decision.verdict == REJECTED
        assert "collision" in compile_decision.reason
        checks = {d.subject: d for d in ex.by_area("checks")}
        assert checks["collisions"].verdict == REJECTED
        assert "certain" in checks["collisions"].reason

    def test_analysis_decisions_still_present(self):
        """The rest of the story (schedule, vectorize) still renders."""
        ex = explain(COLLIDING)
        assert ex.by_area("schedule")
        assert ex.by_area("vectorize")


class TestMonolithicAndWavefront:
    def test_sor_monolithic_covers_required_areas(self):
        ex = explain(SOR_MONOLITHIC, params={"m": 8, "omega": 1.0})
        for area in ("strategy", "schedule", "checks", "parallel"):
            assert ex.by_area(area), area
        assert any(d.verdict == REJECTED for d in ex.by_area("parallel"))

    def test_wavefront_parallel_accepted(self):
        ex = explain(WAVEFRONT_F, params={"n": 8},
                     options=repro.CodegenOptions(parallel=True))
        accepted = [d for d in ex.by_area("parallel")
                    if d.verdict == ACCEPTED]
        assert any("wavefront h=" in d.reason for d in accepted)
        assert any("speedup bound" in d.reason for d in accepted)


class TestProgramGolden:
    def test_jacobi_program_decisions(self):
        ex = explain(PROGRAM_JACOBI_STEPS, params={"m": 6, "k": 2})
        assert ex.kind == "program"
        [topo] = ex.by_area("compile")
        assert "topo order" in topo.reason
        [inplace] = ex.by_area("inplace")
        assert inplace.verdict == REJECTED
        assert "in-place sweeps rejected" in inplace.reason
        assert any(d.verdict in (ACCEPTED, INFO)
                   for d in ex.by_area("iterate"))

    def test_program_fuse_edge_accepted(self):
        # A distance-zero sole-consumer chain fuses outright: the
        # producer is never allocated, so there is no reuse edge —
        # the decision lands in the 'fuse' area instead.
        src = """
        a = array (1,40) [ i := i * i | i <- [1..40] ];
        b = array (1,40) [ i := a!i + 1 | i <- [1..40] ]
        """
        ex = explain(src)
        fused = [d for d in ex.by_area("fuse")
                 if d.verdict == ACCEPTED]
        assert any("b <- a" in d.subject for d in fused)
        assert not [d for d in ex.by_area("reuse")
                    if d.verdict == ACCEPTED]

    def test_program_reuse_edges_accepted(self):
        # A two-clause producer cannot fuse (recorded rejection), so
        # §9 buffer reuse still fires and is explained as before.
        src = """
        a = array (1,40) ([ i := 1.0 * (i * i) | i <- [1..20] ]
                       ++ [ i := 1.0 * i | i <- [21..40] ]);
        b = array (1,40) [ i := a!i + 1 | i <- [1..40] ]
        """
        ex = explain(src)
        reuse = [d for d in ex.by_area("reuse")
                 if d.verdict == ACCEPTED]
        assert any("b <- a" in d.subject for d in reuse)
        assert any("2 clauses" in d.reason
                   for d in ex.by_area("fuse"))

    def test_per_binding_decisions_prefixed(self):
        ex = explain(PROGRAM_JACOBI_STEPS, params={"m": 6, "k": 2})
        subjects = [d.subject for d in ex.decisions]
        assert any(s.startswith("u0: ") for s in subjects)


class TestCompileExplainKwarg:
    def test_compile_attaches_explanation(self):
        compiled = repro.compile(WAVEFRONT_F, params={"n": 6},
                                 explain=True)
        assert isinstance(compiled.explanation, Explanation)
        assert compiled.explanation.by_area("schedule")

    def test_compile_without_kwarg_has_no_explanation(self):
        compiled = repro.compile(WAVEFRONT_F, params={"n": 6})
        assert not hasattr(compiled, "explanation")


#: Backward-running recurrence: tiles would run against the carried
#: dependence, so the tiling pass must reject with this exact reason.
BACKWARD = ("letrec* a = array (1,8) [ i := "
            "if i == 8 then 1.0 else a!(i+1) + 1.0 "
            "| i <- [1..8] ] in a")


class TestTileArea:
    def _options(self, tile):
        from repro.codegen.emit import CodegenOptions

        return CodegenOptions(tile=tile)

    def test_accepted_stencil_names_sizes_and_kind(self):
        src = ("array (1,16) [ i := if i == 1 || i == 16 then b!i "
               "else (b!(i-1) + b!(i+1)) / 2.0 | i <- [1..16] ]")
        ex = explain(src, options=self._options(4))
        accepted = [d for d in ex.by_area("tile")
                    if d.verdict == ACCEPTED]
        assert len(accepted) == 1
        assert "rect tiles [i:4]" in accepted[0].reason
        assert "direction vectors" in accepted[0].reason

    def test_golden_rejection_line(self):
        ex = explain(BACKWARD, options=self._options(4))
        lines = [str(d) for d in ex.by_area("tile")
                 if d.verdict == FALLBACK]
        assert lines == [
            "[tile] cache blocking: fallback — untiled loops emitted: "
            "loop i runs backward; only forward nests are tiled"
        ]

    def test_untiled_compile_has_no_tile_area(self):
        ex = explain(BACKWARD)
        assert not ex.by_area("tile")

    def test_program_rejection_reaches_tile_area(self):
        from repro.kernels import PROGRAM_SOR

        ex = explain(PROGRAM_SOR,
                     params={"m": 8, "k": 5, "omega": 1.25},
                     options=self._options(4))
        falls = [d for d in ex.by_area("tile")
                 if d.verdict == FALLBACK]
        assert any("main" in d.subject for d in falls)
        assert any("perfect loop chain" in d.reason for d in falls)
