"""Bench JSON schema round-trip and the bench-check regression gate."""

import json

import pytest

from repro.obs.bench import (
    SCHEMA_VERSION,
    BenchRecord,
    BenchSuite,
    bench_check,
    check,
    default_host,
)


def make_suite(**medians):
    suite = BenchSuite(host="test", fast=True)
    for key, median_ns in medians.items():
        suite.add(key=key, experiment="E0", kernel="k", n=8,
                  strategy="thunkless", median_ns=median_ns,
                  ratios={"speedup": 3.0})
    return suite


class TestSchema:
    def test_round_trip(self):
        suite = make_suite(a=1000.0, b=2000.0)
        suite.records[0].allocations = {"arrays_allocated": 2}
        blob = json.dumps(suite.to_json())
        clone = BenchSuite.from_json(json.loads(blob))
        assert clone.host == "test" and clone.fast is True
        assert {r.key for r in clone.records} == {"a", "b"}
        a = clone.by_key()["a"]
        assert a.median_ns == 1000.0
        assert a.allocations == {"arrays_allocated": 2}
        assert a.ratios == {"speedup": 3.0}
        assert a.n == 8 and a.strategy == "thunkless"

    def test_records_sorted_by_key(self):
        suite = make_suite(z=1.0, a=2.0, m=3.0)
        keys = [r["key"] for r in suite.to_json()["records"]]
        assert keys == sorted(keys)

    def test_unknown_fields_preserved_in_extra(self):
        record = BenchRecord.from_dict(
            {"key": "a", "median_ns": 1.0, "future_field": 42}
        )
        assert record.extra == {"future_field": 42}
        assert record.to_dict()["extra"] == {"future_field": 42}

    def test_schema_version_enforced(self):
        with pytest.raises(ValueError, match="schema"):
            BenchSuite.from_json({"schema": SCHEMA_VERSION + 1,
                                  "records": []})

    def test_write_and_load(self, tmp_path):
        suite = make_suite(a=1000.0)
        path = suite.write(str(tmp_path))
        assert path.endswith("BENCH_test.json")
        clone = BenchSuite.load(path)
        assert clone.by_key()["a"].median_ns == 1000.0

    def test_default_host_sanitized(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HOST", "ci runner/01")
        assert default_host() == "ci_runner_01"


class TestCheck:
    def test_identical_suites_pass(self):
        base = make_suite(a=1000.0, b=2000.0)
        problems, notes = check(base, make_suite(a=1000.0, b=2000.0))
        assert problems == []
        assert len(notes) == 2

    def test_regression_beyond_tolerance_fails(self):
        base = make_suite(a=1000.0)
        problems, _ = check(base, make_suite(a=2000.0), tolerance=0.25)
        assert len(problems) == 1
        assert "regression" in problems[0]

    def test_within_tolerance_passes(self):
        base = make_suite(a=1000.0)
        problems, _ = check(base, make_suite(a=1200.0), tolerance=0.25)
        assert problems == []

    def test_missing_key_is_a_problem(self):
        base = make_suite(a=1000.0, b=2000.0)
        problems, _ = check(base, make_suite(a=1000.0))
        assert any("missing" in p for p in problems)

    def test_allow_missing_downgrades_to_note(self):
        base = make_suite(a=1000.0, b=2000.0)
        problems, notes = check(base, make_suite(a=1000.0),
                                allow_missing=True)
        assert problems == []
        assert any("missing" in n for n in notes)

    def test_shrunk_ratio_fails(self):
        base = make_suite(a=1000.0)
        current = make_suite(a=1000.0)
        current.records[0].ratios["speedup"] = 1.5  # was 3.0
        problems, _ = check(base, current, tolerance=0.25)
        assert any("ratio" in p for p in problems)

    def test_new_benchmark_is_a_note(self):
        base = make_suite(a=1000.0)
        problems, notes = check(base, make_suite(a=1000.0, c=5.0))
        assert problems == []
        assert any("no baseline" in n for n in notes)


class TestBenchCheckCli:
    def write(self, tmp_path, name, suite):
        path = tmp_path / name
        path.write_text(json.dumps(suite.to_json()))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_suite(a=1000.0))
        assert bench_check(base, base) == 0
        assert "bench-check: ok" in capsys.readouterr().out

    def test_exit_nonzero_on_2x_slowdown(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_suite(a=1000.0))
        slow = self.write(tmp_path, "slow.json", make_suite(a=2000.0))
        assert bench_check(base, slow, tolerance=0.25) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_command(self, tmp_path, capsys):
        from repro.__main__ import main

        base = self.write(tmp_path, "base.json", make_suite(a=1000.0))
        slow = self.write(tmp_path, "slow.json", make_suite(a=2000.0))
        assert main(["bench-check", base, base]) == 0
        capsys.readouterr()
        assert main(["bench-check", base, slow,
                     "--tolerance", "0.25"]) == 1
        assert "regression" in capsys.readouterr().out
        # generous tolerance forgives the same slowdown
        assert main(["bench-check", base, slow,
                     "--tolerance", "4.0"]) == 0


class TestPytestBridge:
    def test_from_pytest_benchmarks(self):
        class Stats:
            median = 0.001
            mean = 0.0012
            min = 0.0009
            rounds = 7

        class Bench:
            fullname = "benchmarks/test_x.py::test_y"
            group = "E18-wavefront"
            stats = Stats()
            extra_info = {"kernel": "SOR", "n": 64,
                          "strategy": "thunkless",
                          "ratios": {"speedup": 4.0}, "note": "x"}

        class Disabled:
            fullname = "benchmarks/test_x.py::test_skipped"
            group = "E18-wavefront"
            stats = None
            extra_info = {}

        suite = BenchSuite.from_pytest_benchmarks([Bench(), Disabled()])
        [record] = suite.records
        assert record.key == "benchmarks/test_x.py::test_y"
        assert record.experiment == "E18-wavefront"
        assert record.kernel == "SOR" and record.n == 64
        assert record.median_ns == pytest.approx(1e6)
        assert record.ratios == {"speedup": 4.0}
        assert record.extra == {"note": "x"}
