"""The span/trace layer: nesting, timing monotonicity, derived views."""

import pickle
import time

import pytest

import repro
from repro.kernels import PROGRAM_JACOBI_STEPS, SOR_MONOLITHIC
from repro.obs.trace import (
    Span,
    Trace,
    active_trace,
    count_runtime,
    refresh_runtime_tracing,
    reset_runtime_counters,
    runtime_counters,
    span,
    span_timings,
    trace_scope,
    tracing,
)


class TestSpanTree:
    def test_nesting_shape(self):
        trace = Trace("root")
        with trace.span("a"):
            with trace.span("b"):
                trace.count("inner")
            with trace.span("c"):
                pass
        with trace.span("d"):
            pass
        trace.close()
        names = [node.name for node in trace.root.walk()]
        assert names == ["root", "a", "b", "c", "d"]
        (a, d) = trace.root.children
        assert [child.name for child in a.children] == ["b", "c"]
        assert a.children[0].counters == {"inner": 1}

    def test_timing_monotonicity(self):
        """Every child's duration fits inside its parent's."""
        trace = Trace("root")
        with trace.span("outer"):
            with trace.span("inner"):
                time.sleep(0.002)
        trace.close()
        outer = trace.root.children[0]
        inner = outer.children[0]
        assert 0 <= inner.duration <= outer.duration
        assert outer.duration <= trace.root.duration
        assert inner.duration >= 0.002

    def test_open_span_duration_grows(self):
        node = Span("open")
        first = node.duration
        time.sleep(0.001)
        assert node.duration > first
        assert node.elapsed is None

    def test_span_timings_sums_repeats(self):
        trace = Trace("root")
        for _ in range(3):
            with trace.span("pass"):
                pass
        trace.close()
        timings = trace.timings()
        assert set(timings) == {"pass", "total"}
        assert timings["pass"] <= timings["total"]

    def test_counters_aggregate_over_tree(self):
        trace = Trace("root")
        trace.count("hits", 2)
        with trace.span("a"):
            trace.count("hits", 3)
        trace.close()
        assert trace.counters() == {"hits": 5}

    def test_to_dict_and_render(self):
        trace = Trace("root")
        with trace.span("a", color="red"):
            trace.count("n", 4)
        trace.close()
        as_dict = trace.to_dict()
        assert as_dict["name"] == "root"
        assert as_dict["children"][0]["attrs"] == {"color": "red"}
        assert as_dict["children"][0]["counters"] == {"n": 4}
        rendered = trace.render()
        assert "root:" in rendered and "n=4" in rendered

    def test_pickle_round_trip(self):
        trace = Trace("root")
        with trace.span("a"):
            trace.count("n")
        trace.close()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.root.children[0].counters == {"n": 1}
        assert clone.timings()["total"] == trace.timings()["total"]


class TestActiveTraceStack:
    def test_module_span_is_noop_without_trace(self):
        assert active_trace() is None
        with span("orphan") as node:
            assert node is None

    def test_tracing_scopes_the_active_trace(self):
        trace = Trace("t")
        with tracing(trace):
            assert active_trace() is trace
            with span("child"):
                pass
        assert active_trace() is None
        assert [c.name for c in trace.root.children] == ["child"]

    def test_trace_scope_standalone_and_nested(self):
        with trace_scope("outer") as outer:
            with trace_scope("inner") as inner:
                pass
        assert outer.name == "outer" and outer.elapsed is not None
        assert inner in outer.children
        timings = span_timings(outer)
        assert timings["inner"] <= timings["total"]


class TestPipelineTimings:
    def test_children_sum_within_total(self):
        """The satellite fix: pass times can never exceed 'total'."""
        compiled = repro.compile(SOR_MONOLITHIC,
                                 params={"m": 8, "omega": 1.0})
        timings = compiled.report.timings
        assert "total" in timings
        children = sum(v for k, v in timings.items() if k != "total")
        assert children <= timings["total"]
        for name in ("parse", "build", "dependence", "schedule",
                     "codegen"):
            assert timings[name] >= 0

    def test_report_carries_trace(self):
        compiled = repro.compile(SOR_MONOLITHIC,
                                 params={"m": 8, "omega": 1.0})
        root = compiled.report.trace
        assert root is not None
        names = {node.name for node in root.walk()}
        assert {"parse", "schedule", "codegen"} <= names

    def test_program_trace_has_per_binding_spans(self):
        program = repro.compile_program(PROGRAM_JACOBI_STEPS,
                                        params={"m": 6, "k": 2})
        timings = program.report.timings
        binding_keys = [k for k in timings if k.startswith("binding:")]
        assert binding_keys
        children = sum(v for k, v in timings.items() if k != "total")
        assert children <= timings["total"]
        counters = {}
        for node in program.report.trace.walk():
            counters.update(node.counters)
        assert counters.get("program.bindings") == 3


class TestRuntimeCounters:
    @pytest.fixture(autouse=True)
    def restore_gate(self, monkeypatch):
        yield
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        refresh_runtime_tracing()
        reset_runtime_counters()

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert refresh_runtime_tracing() is False
        reset_runtime_counters()
        count_runtime("ghost")
        assert runtime_counters() == {}

    def test_enabled_counts_allocations(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert refresh_runtime_tracing() is True
        reset_runtime_counters()
        compiled = repro.compile(
            "letrec* a = array (1,9) [ i := i | i <- [1..9] ] in a"
        )
        compiled({})
        counters = runtime_counters()
        assert counters.get("alloc.arrays", 0) >= 1
        assert counters.get("alloc.cells", 0) >= 9

    def test_falsy_values_disable(self, monkeypatch):
        for value in ("0", "false", "no", ""):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert refresh_runtime_tracing() is False
