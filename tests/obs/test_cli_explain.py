"""The CLI ``explain`` command over the acceptance kernels."""

import json

import pytest

from repro.__main__ import main
from repro.kernels import PROGRAM_JACOBI, SOR_MONOLITHIC, WAVEFRONT_F


@pytest.fixture
def source_file(tmp_path):
    def write(source):
        path = tmp_path / "kernel.hs"
        path.write_text(source)
        return str(path)

    return write


def test_explain_sor_monolithic(source_file, capsys):
    code = main(["explain", source_file(SOR_MONOLITHIC),
                 "-p", "m=8", "-p", "omega=1.0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "decision trace (definition)" in out
    assert "schedule:" in out and "parallel:" in out
    assert "rejected" in out  # no legal hyperplane on plain SOR


def test_explain_wavefront_parallel(source_file, capsys):
    code = main(["explain", source_file(WAVEFRONT_F),
                 "-p", "n=8", "--parallel"])
    out = capsys.readouterr().out
    assert code == 0
    assert "wavefront h=" in out
    assert "accepted" in out


def test_explain_inplace_flag(source_file, capsys):
    from repro.kernels import SOR

    code = main(["explain", source_file(SOR),
                 "-p", "n=8", "-p", "omega=1.0", "--inplace", "u"])
    out = capsys.readouterr().out
    assert code == 0
    assert "inplace:" in out
    assert "storage reuse: accepted" in out


def test_explain_program_jacobi(source_file, capsys):
    code = main(["explain", source_file(PROGRAM_JACOBI), "-p", "m=6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "decision trace (program)" in out
    assert "topo order" in out
    assert "in-place sweeps rejected" in out  # with its reason
    assert "iterate:" in out


def test_explain_json(source_file, capsys):
    code = main(["explain", source_file(WAVEFRONT_F),
                 "-p", "n=8", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    data = json.loads(out)
    assert data["kind"] == "definition"
    areas = {d["area"] for d in data["decisions"]}
    assert {"strategy", "schedule", "checks"} <= areas


def test_second_file_rejected_outside_bench_check(source_file):
    path = source_file(WAVEFRONT_F)
    with pytest.raises(SystemExit):
        main(["explain", path, path])
