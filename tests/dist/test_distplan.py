"""Unit tests for the distribution planner (repro.core.distplan).

Window arithmetic, float provability, the per-mode legality checks,
and every reasoned rejection the planner can hand the program
compiler.
"""

import pytest

import repro
from repro.core.distplan import (
    DistReject,
    plan_distribution,
    split_windows,
    value_provably_float,
)
from repro.kernels import PROGRAM_JACOBI, PROGRAM_JACOBI_STEPS, PROGRAM_SOR
from repro.lang.parser import parse_expr


def _iterate_plan(prog, name="main"):
    for step in prog.steps:
        if step.name == name and step.iterate is not None:
            return step.iterate
    raise AssertionError(f"no iterate step {name!r}")


def _dist_fallbacks(prog):
    return [f for f in prog.report.fallbacks if f.startswith("dist ")]


# ----------------------------------------------------------------------
# Window arithmetic.


class TestSplitWindows:
    def test_even_split(self):
        assert split_windows(1, 8, 2) == [(1, 4), (5, 8)]

    def test_remainder_to_leading_windows(self):
        # 10 rows over 3 blocks: sizes 4, 3, 3 — differ by at most one.
        windows = split_windows(1, 10, 3)
        assert windows == [(1, 4), (5, 7), (8, 10)]
        sizes = [hi - lo + 1 for lo, hi in windows]
        assert max(sizes) - min(sizes) <= 1

    def test_windows_partition_exactly(self):
        for lo, hi, parts in [(1, 7, 3), (0, 0, 4), (2, 17, 5)]:
            windows = split_windows(lo, hi, parts)
            cells = [
                x for wlo, whi in windows for x in range(wlo, whi + 1)
            ]
            assert cells == list(range(lo, hi + 1))

    def test_more_parts_than_cells_yields_empty_tails(self):
        windows = split_windows(1, 3, 5)
        assert windows[:3] == [(1, 1), (2, 2), (3, 3)]
        for lo, hi in windows[3:]:
            assert hi < lo  # empty, encoded (x, x-1)


# ----------------------------------------------------------------------
# Float provability (shared buffers are float64; ints must not coerce).


class TestValueProvablyFloat:
    def check(self, src, params=None):
        return value_provably_float(parse_expr(src), params or {})

    def test_float_literal(self):
        assert self.check("1.5")

    def test_int_literal_rejected(self):
        assert not self.check("3")

    def test_division_is_float(self):
        assert self.check("a!i / 2")

    def test_arith_with_float_side(self):
        assert self.check("1.0 * (i + j)")
        assert not self.check("i + j")

    def test_array_read_counts_as_float(self):
        # Run-time pre-flight verifies every shipped array is floats.
        assert self.check("u!(i,j)")

    def test_if_needs_both_branches(self):
        assert self.check("if i == 1 then 1.0 else 0.5")
        assert not self.check("if i == 1 then 1.0 else 0")

    def test_float_param(self):
        assert self.check("omega", {"omega": 1.2})
        assert not self.check("omega", {"omega": 2})

    def test_intrinsics(self):
        assert self.check("sqrt (i + j)")


# ----------------------------------------------------------------------
# Planner verdicts on the real program kernels.


class TestPlannerVerdicts:
    def test_jacobi_is_stencil(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 8, "tol": 1e-3},
            dist=True, workers=2,
        )
        plan = _iterate_plan(prog).dist
        assert plan is not None
        assert plan.kind == "stencil"
        assert plan.mode == "double"
        assert (plan.halo_lo, plan.halo_hi) == (1, 1)
        assert plan.row_blocks == ((1, 4), (5, 8))
        assert plan.kernel is not None and plan.kernel.source

    def test_sor_is_wavefront(self):
        prog = repro.compile_program(
            PROGRAM_SOR, params={"m": 8, "k": 3, "omega": 1.2},
            dist=True, workers=2,
        )
        plan = _iterate_plan(prog).dist
        assert plan is not None
        assert plan.kind == "wavefront"
        assert plan.mode == "inplace"
        # stage = block + chunk: blocks + chunks - 1 stages per sweep.
        assert plan.stages == len(plan.col_blocks) + len(plan.chunks) - 1

    def test_non_divisible_rows(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI_STEPS, params={"m": 10, "k": 2},
            dist=True, workers=3,
        )
        plan = _iterate_plan(prog).dist
        rows = [
            x for lo, hi in plan.row_blocks for x in range(lo, hi + 1)
        ]
        assert rows == list(range(1, 11))

    def test_more_workers_than_rows_keeps_empty_blocks(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI_STEPS, params={"m": 4, "k": 2},
            dist=True, workers=6,
        )
        plan = _iterate_plan(prog).dist
        assert plan is not None
        assert len(plan.row_blocks) == 6
        assert any(hi < lo for lo, hi in plan.row_blocks)

    def test_tiny_mesh_inplace_backward_interior_is_rejected(self):
        # At m=3 the step's single interior cell lets §9 pick true
        # in-place sweeps, and its backward-scheduled interior loop
        # (with nonzero-offset reads) must reject wavefront staging.
        prog = repro.compile_program(
            PROGRAM_JACOBI_STEPS, params={"m": 3, "k": 2},
            dist=True, workers=2,
        )
        step = _iterate_plan(prog)
        if step.mode == "inplace":
            assert step.dist is None
            assert any("scheduled backward" in f
                       for f in _dist_fallbacks(prog))

    def test_workers_one_is_reasoned_skip(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
            dist=True, workers=1,
        )
        assert _iterate_plan(prog).dist is None
        fallbacks = _dist_fallbacks(prog)
        assert any("single block" in f for f in fallbacks)

    def test_dist_off_plans_nothing(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
        )
        assert _iterate_plan(prog).dist is None
        assert not _dist_fallbacks(prog)
        assert not prog.report.dist

    def test_non_iterate_bindings_get_reasons(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
            dist=True, workers=2,
        )
        fallbacks = _dist_fallbacks(prog)
        assert any(f.startswith("dist 'u0'") for f in fallbacks)
        assert any(f.startswith("dist 'step'") for f in fallbacks)

    def test_notes_land_in_report_dist(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 8, "tol": 1e-3},
            dist=True, workers=2,
        )
        assert any("stencil" in line for line in prog.report.dist)
        assert any("halo" in line for line in prog.report.dist)


# ----------------------------------------------------------------------
# Reasoned rejections.


INT_VALUED = """
u0 = array (1,m) [ i := 1.0 * i | i <- [1..m] ];
step u = letrec a = array (1,m) [ i := 1 | i <- [1..m] ] in a;
main = iterate step u0 k
"""


class TestRejections:
    def test_workers_below_two(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
            dist=True, workers=0,
        )
        # workers=0 resolves to cpu_count; force the degenerate case
        # through the planner directly instead.
        step = _iterate_plan(prog)
        info = prog.report.binding("main")
        with pytest.raises(DistReject, match="single block"):
            plan_distribution("main", info.report, step.mode,
                              step.param, params={"m": 6}, workers=1)

    def test_int_valued_clause_rejected(self):
        prog = repro.compile_program(
            INT_VALUED, params={"m": 6, "k": 2}, dist=True, workers=2,
        )
        assert _iterate_plan(prog).dist is None
        assert any("provably float" in f for f in _dist_fallbacks(prog))

    def test_rejection_reaches_explain_dist_area(self):
        from repro.obs.explain import explain_program_report

        prog = repro.compile_program(
            INT_VALUED, params={"m": 6, "k": 2}, dist=True, workers=2,
        )
        trace = explain_program_report(prog.report)
        areas = trace.by_area("dist")
        assert any("provably float" in d.reason for d in areas)

    def test_unknown_mode(self):
        prog = repro.compile_program(
            PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
            dist=True, workers=2,
        )
        info = prog.report.binding("main")
        step = _iterate_plan(prog)
        with pytest.raises(DistReject, match="unknown iterate mode"):
            plan_distribution("main", info.report, "mystery",
                              step.param, params={"m": 6}, workers=2)
