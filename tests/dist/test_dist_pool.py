"""The distributed pool's failure containment and runtime support.

Worker crashes must break the barrier (not hang peers), mark the pool
broken, and leave the next call a fresh pool; ``par_chunks`` must run
serial inside workers; the shared segments and tree reduction must
behave standalone.
"""

import threading

import pytest

from repro.codegen import support
from repro.dist import exchange
from repro.dist.pool import (
    DistPool,
    DistPoolError,
    fork_available,
    get_pool,
    shutdown_pools,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="distribution needs fork"
)

needs_shm = pytest.mark.skipif(
    not exchange.available(), reason="needs shared memory + numpy"
)


class TestSharedDoubles:
    @needs_shm
    def test_create_attach_roundtrip(self):
        owner = exchange.SharedDoubles.create(4)
        try:
            owner.array[:] = [1.0, 2.0, 3.0, 4.0]
            view = exchange.SharedDoubles.attach(owner.name, 4)
            assert list(view.array) == [1.0, 2.0, 3.0, 4.0]
            view.array[0] = 9.0
            assert owner.array[0] == 9.0
            view.destroy()  # non-owner: close only
            assert owner.array[1] == 2.0
        finally:
            owner.destroy()

    @needs_shm
    def test_destroy_is_idempotent_for_owner(self):
        owner = exchange.SharedDoubles.create(2)
        owner.destroy()
        owner.destroy()  # second unlink is a tolerated no-op


class TestTreeReduceMax:
    @needs_shm
    @pytest.mark.parametrize("parties", [1, 2, 3, 4, 5, 8])
    def test_all_threads_agree_on_the_max(self, parties):
        shared = exchange.SharedDoubles.create(parties)
        try:
            barrier = threading.Barrier(parties)
            values = [float(i * 37 % 11) for i in range(parties)]
            results = [None] * parties

            def work(index):
                shared.array[index] = values[index]
                results[index] = exchange.tree_reduce_max(
                    shared.array, index, parties,
                    lambda: barrier.wait(30),
                )

            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(parties)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert results == [max(values)] * parties
        finally:
            shared.destroy()


class TestForcedSerialChunks:
    def test_force_serial_never_touches_the_pool(self, monkeypatch):
        monkeypatch.setattr(support, "FORCE_SERIAL_CHUNKS", True)
        monkeypatch.setattr(support, "_PAR_POOL", None)
        seen = []
        support.par_chunks(lambda lo, hi: seen.append((lo, hi)),
                           1, 10, 1, workers=4)
        # One serial chunk covering the whole range; no executor built.
        assert seen == [(1, 10)]
        assert support._PAR_POOL is None

    def test_flag_off_still_parallelizes(self):
        seen = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                seen.append((lo, hi))

        support.par_chunks(body, 1, 8, 1, workers=2)
        assert sorted(seen) == [(1, 4), (5, 8)]

    def test_workers_set_the_flag_after_fork(self):
        # Forked workers run with par_chunks forced serial — probe the
        # worker-side state through a real pool.
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        parent, child = ctx.Pipe()

        def probe(conn):
            from repro.codegen import support as worker_support
            from repro.dist.pool import _worker_main  # noqa: F401

            # _worker_main sets the flag on entry; emulate its prologue
            # exactly the way the pool target does.
            worker_support.FORCE_SERIAL_CHUNKS = True
            conn.send(worker_support.FORCE_SERIAL_CHUNKS)
            conn.close()

        proc = ctx.Process(target=probe, args=(child,))
        proc.start()
        child.close()
        assert parent.recv() is True
        proc.join(10)


class TestPoolFailureContainment:
    def test_bad_job_breaks_and_rebuilds(self):
        pool = get_pool(2)
        with pytest.raises(DistPoolError):
            # A job no worker understands: raises inside the worker,
            # which aborts the barrier and reports the traceback.
            pool.run({"mode": "double", "kind": "steps", "control": 1,
                      "kernel": "this is not python",
                      "entry": "_build", "clamps": [],
                      "guard_axes": (), "param": "u",
                      "low": (1,), "high": (2,), "size": 2,
                      "env": {}, "trace": False,
                      "row_blocks": ((1, 1), (2, 2)),
                      "col_blocks": (), "chunks": (),
                      "shm": {"a": "missing", "b": "missing",
                              "r": "missing"}})
        assert pool.broken
        fresh = get_pool(2)
        assert fresh is not pool
        assert fresh.alive()
        fresh.shutdown()

    def test_run_after_shutdown_raises(self):
        pool = DistPool(2)
        pool.shutdown()
        with pytest.raises(DistPoolError):
            pool.run({"mode": "double"})

    def test_shutdown_pools_is_idempotent(self):
        get_pool(2)
        shutdown_pools()
        shutdown_pools()  # second call: nothing left, no error

    def test_atexit_hooks_coexist(self):
        # Satellite: draining the dist pool and the par_chunks thread
        # pool must not deadlock, in either order.
        support.par_chunks(lambda lo, hi: None, 1, 4, 1, workers=2)
        get_pool(2)
        shutdown_pools()
        support._shutdown_pool()
        # Both rebuild lazily afterwards.
        seen = []
        support.par_chunks(lambda lo, hi: seen.append((lo, hi)),
                           1, 4, 1, workers=2)
        assert len(seen) == 2
        pool = get_pool(2)
        assert pool.alive()
        shutdown_pools()
