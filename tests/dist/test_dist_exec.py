"""End-to-end distributed execution: bit-identical results, identical
sweep counts, aggregated counters, and every runtime fallback path.

The differential frame: the same program runs through the lazy oracle,
the single-process compiled driver, and the distributed driver at
several worker counts — all three must agree exactly (cells *and*
convergence sweep counts).
"""

import pytest

import repro
from repro.codegen.support import ALLOC_STATS
from repro.dist.pool import fork_available, shutdown_pools
from repro.kernels import PROGRAM_JACOBI, PROGRAM_JACOBI_STEPS, PROGRAM_SOR
from repro.obs.trace import (
    refresh_runtime_tracing,
    reset_runtime_counters,
    runtime_counters,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="distribution needs fork"
)


@pytest.fixture
def traced(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    refresh_runtime_tracing()
    reset_runtime_counters()
    yield
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    refresh_runtime_tracing()


def _run(src, params, **compile_kw):
    prog = repro.compile_program(src, params=params, **compile_kw)
    return prog, prog()


def _sweeps(counters, mode):
    return counters.get(f"iterate.sweeps.{mode}", 0)


class TestJacobiConverge:
    PARAMS = {"m": 8, "tol": 1e-3}

    @pytest.mark.parametrize("workers", [2, 3])
    def test_identical_to_single_process(self, traced, workers):
        single, expect = _run(PROGRAM_JACOBI, self.PARAMS)
        base = dict(runtime_counters())
        reset_runtime_counters()
        dist, got = _run(PROGRAM_JACOBI, self.PARAMS,
                         dist=True, workers=workers)
        counters = dict(runtime_counters())
        assert dist.steps[-1].iterate.dist is not None
        assert got.to_list() == expect.to_list()
        assert got.bounds == expect.bounds
        # Convergence decisions — and therefore the sweep count — are
        # bit-identical (max over float64 is exact and associative).
        assert _sweeps(counters, "double") == _sweeps(base, "double")
        assert counters["dist.blocks"] == workers

    def test_identical_to_oracle(self):
        oracle = repro.run_program(
            PROGRAM_JACOBI, bindings=dict(self.PARAMS), deep=False
        )
        _, got = _run(PROGRAM_JACOBI, self.PARAMS, dist=True, workers=2)
        assert got.to_list() == oracle.to_list()

    def test_counter_aggregation_from_workers(self, traced):
        # Satellite: worker-side runtime counters fold back into the
        # parent trace — dist.worker.sweeps is counted only inside
        # worker processes, so seeing workers * sweeps here proves the
        # aggregation round-trip.
        _, _ = _run(PROGRAM_JACOBI, self.PARAMS, dist=True, workers=2)
        counters = dict(runtime_counters())
        sweeps = _sweeps(counters, "double")
        assert sweeps > 0
        assert counters["dist.worker.sweeps"] == 2 * sweeps
        assert counters["dist.halo.cells"] > 0

    def test_alloc_stats_aggregate_and_stay_bounded(self):
        # Workers allocate nothing in steady state (kernels write the
        # shared buffers); the parent's accounting covers the shared
        # segments. Whatever a worker *did* allocate is folded in, so
        # the total is never less than a fresh single-process run's.
        prog = repro.compile_program(PROGRAM_JACOBI, params=self.PARAMS,
                                     dist=True, workers=2)
        ALLOC_STATS.reset()
        prog()
        assert prog.steps[-1].iterate.dist is not None
        dist_allocs = ALLOC_STATS.arrays_allocated
        assert dist_allocs > 0
        # Steady-state bound: a convergence run of ~70 sweeps must not
        # allocate per sweep.
        assert dist_allocs < 10


class TestJacobiSteps:
    @pytest.mark.parametrize("m,workers", [(10, 3), (9, 2), (5, 4)])
    def test_non_divisible_and_narrow_blocks(self, m, workers):
        params = {"m": m, "k": 7}
        _, expect = _run(PROGRAM_JACOBI_STEPS, params)
        dist, got = _run(PROGRAM_JACOBI_STEPS, params,
                         dist=True, workers=workers)
        assert dist.steps[-1].iterate.dist is not None
        assert got.to_list() == expect.to_list()

    def test_more_workers_than_rows(self):
        # Empty blocks still hit every barrier and report diff 0.0.
        params = {"m": 4, "k": 5}
        _, expect = _run(PROGRAM_JACOBI_STEPS, params)
        dist, got = _run(PROGRAM_JACOBI_STEPS, params,
                         dist=True, workers=6)
        plan = dist.steps[-1].iterate.dist
        assert plan is not None
        assert any(hi < lo for lo, hi in plan.row_blocks)
        assert got.to_list() == expect.to_list()

    def test_zero_steps_falls_back_to_seed(self, traced):
        params = {"m": 6, "k": 0}
        _, expect = _run(PROGRAM_JACOBI_STEPS, params)
        dist, got = _run(PROGRAM_JACOBI_STEPS, params,
                         dist=True, workers=2)
        assert dist.steps[-1].iterate.dist is not None
        assert got.to_list() == expect.to_list()
        assert runtime_counters().get("dist.fallback.runtime", 0) >= 1

    def test_steps_override_still_distributes(self):
        params = {"m": 8, "k": 3}
        single = repro.compile_program(PROGRAM_JACOBI_STEPS,
                                       params=params)
        dist = repro.compile_program(PROGRAM_JACOBI_STEPS, params=params,
                                     dist=True, workers=2)
        assert (dist(steps=9).to_list()
                == single(steps=9).to_list())


class TestSORWavefront:
    PARAMS = {"m": 9, "k": 11, "omega": 1.2}

    @pytest.mark.parametrize("workers", [2, 3])
    def test_identical_to_single_process(self, traced, workers):
        single, expect = _run(PROGRAM_SOR, self.PARAMS)
        reset_runtime_counters()
        dist, got = _run(PROGRAM_SOR, self.PARAMS,
                         dist=True, workers=workers)
        counters = dict(runtime_counters())
        plan = dist.steps[-1].iterate.dist
        assert plan is not None and plan.kind == "wavefront"
        assert got.to_list() == expect.to_list()
        assert _sweeps(counters, "inplace") == self.PARAMS["k"]
        assert (counters["dist.wavefront.stages"]
                == plan.stages * self.PARAMS["k"])

    def test_identical_to_oracle(self):
        oracle = repro.run_program(
            PROGRAM_SOR, bindings=dict(self.PARAMS), deep=False
        )
        _, got = _run(PROGRAM_SOR, self.PARAMS, dist=True, workers=2)
        assert got.to_list() == oracle.to_list()


#: A double-mode rank-2 step over an *external* seed: the ±1 row
#: reads force double buffering (in-place would need snapshots), and
#: the seed's cells are only known at run time.
EXTERNAL_SEED = """
step u = letrec a = array ((1,1),(m,m))
   ([ (1,j) := u!(1,j) | j <- [1..m] ] ++
    [ (m,j) := u!(m,j) | j <- [1..m] ] ++
    [ (i,j) := 0.5 * (u!(i-1,j) + u!(i+1,j))
      | i <- [2..m-1], j <- [1..m] ])
  in a;
main = iterate step u0 k
"""


class TestRuntimeFallbacks:
    def test_int_seed_cells_fall_back(self, traced):
        # A program whose seed contains non-floats at run time must
        # fall back (shared float64 buffers would coerce) and still
        # produce the single-process answer.
        params = {"m": 4, "k": 3}
        single = repro.compile_program(EXTERNAL_SEED, params=params)
        dist = repro.compile_program(EXTERNAL_SEED, params=params,
                                     dist=True, workers=2)
        assert dist.steps[-1].iterate.dist is not None
        seed = repro.FlatArray.from_list(
            ((1, 1), (4, 4)), list(range(16))
        )
        expect = single({"u0": seed})
        reset_runtime_counters()
        got = dist({"u0": seed})
        assert got.to_list() == expect.to_list()
        assert runtime_counters().get("dist.fallback.runtime", 0) >= 1

    def test_float_seed_distributes(self):
        params = {"m": 4, "k": 3}
        single = repro.compile_program(EXTERNAL_SEED, params=params)
        dist = repro.compile_program(EXTERNAL_SEED, params=params,
                                     dist=True, workers=2)
        seed = repro.FlatArray.from_list(
            ((1, 1), (4, 4)), [float(x) for x in range(16)]
        )
        assert (dist({"u0": seed}).to_list()
                == single({"u0": seed}).to_list())

    def test_pool_survives_across_programs(self):
        # The cached pool is reused by consecutive compiled programs.
        params = {"m": 6, "tol": 1e-2}
        a = repro.compile_program(PROGRAM_JACOBI, params=params,
                                  dist=True, workers=2)
        first = a().to_list()
        second = a().to_list()
        assert first == second

    def teardown_class(self):
        shutdown_pools()
