"""Distribution through the service and CLI surfaces.

``dist``/``workers`` ride the wire format, salt the pipeline
fingerprint, flow through :class:`CompileService`, and reach the
driver via ``--dist-workers`` — with validation at every border.
"""

import pytest

import repro
from repro import CompileRequest, CompileService, kernels
from repro.__main__ import main
from repro.service.api import WireError
from repro.service.fingerprint import fingerprint_program


class TestWireFormat:
    def test_defaults_stay_off_the_wire(self):
        wire = CompileRequest(kernels.PROGRAM_JACOBI,
                              params={"m": 6, "tol": 1e-2}).to_wire()
        assert "dist" not in wire
        assert "workers" not in wire

    def test_roundtrip(self):
        request = CompileRequest(
            kernels.PROGRAM_JACOBI, params={"m": 6, "tol": 1e-2},
            dist=True, workers=4,
        )
        wire = request.to_wire()
        assert wire["dist"] is True
        assert wire["workers"] == 4
        back = CompileRequest.from_wire(wire)
        assert back.dist is True
        assert back.workers == 4
        assert back == request

    @pytest.mark.parametrize("workers", [-1, 2.5, "4", True])
    def test_bad_workers_rejected(self, workers):
        wire = {"src": kernels.PROGRAM_JACOBI, "workers": workers}
        with pytest.raises(WireError, match="workers"):
            CompileRequest.from_wire(wire)

    def test_dist_coerced_to_bool(self):
        back = CompileRequest.from_wire(
            {"src": kernels.PROGRAM_JACOBI, "dist": 1}
        )
        assert back.dist is True


class TestFingerprints:
    PARAMS = {"m": 6, "tol": 1e-2}

    def test_dist_and_workers_salt_the_program_fingerprint(self):
        base = fingerprint_program(kernels.PROGRAM_JACOBI,
                                   params=self.PARAMS)
        two = fingerprint_program(kernels.PROGRAM_JACOBI,
                                  params=self.PARAMS,
                                  dist=True, workers=2)
        four = fingerprint_program(kernels.PROGRAM_JACOBI,
                                   params=self.PARAMS,
                                   dist=True, workers=4)
        assert len({base, two, four}) == 3

    def test_service_request_fingerprints_differ(self):
        service = CompileService()
        base = service.fingerprint_request(
            CompileRequest(kernels.PROGRAM_JACOBI, params=self.PARAMS)
        )
        dist = service.fingerprint_request(
            CompileRequest(kernels.PROGRAM_JACOBI, params=self.PARAMS,
                           dist=True, workers=2)
        )
        assert base != dist

    def test_service_caches_per_worker_count(self):
        service = CompileService()
        plain = service.submit(
            CompileRequest(kernels.PROGRAM_JACOBI, params=self.PARAMS)
        )
        dist = service.submit(
            CompileRequest(kernels.PROGRAM_JACOBI, params=self.PARAMS,
                           dist=True, workers=2)
        )
        assert plain.ok and dist.ok
        assert plain.compiled is not dist.compiled
        again = service.submit(
            CompileRequest(kernels.PROGRAM_JACOBI, params=self.PARAMS,
                           dist=True, workers=2)
        )
        assert again.compiled is dist.compiled

    def test_service_submit_carries_plan(self):
        result = CompileService().submit(
            CompileRequest(kernels.PROGRAM_JACOBI,
                           params={"m": 8, "tol": 1e-3},
                           dist=True, workers=2)
        )
        assert result.ok
        step = result.compiled.steps[-1]
        assert step.iterate is not None
        assert step.iterate.dist is not None


class TestFacade:
    def test_single_definition_rejects_dist(self):
        with pytest.raises(repro.CompileError, match="multi-binding"):
            repro.compile(kernels.JACOBI, params={"m": 6},
                          dist=True, workers=2)

    def test_facade_compile_dispatches_programs(self):
        prog = repro.compile(kernels.PROGRAM_JACOBI,
                             params={"m": 8, "tol": 1e-3},
                             dist=True, workers=2)
        assert prog.steps[-1].iterate.dist is not None


@pytest.fixture
def jacobi_program_file(tmp_path):
    path = tmp_path / "jacobi.hs"
    path.write_text(kernels.PROGRAM_JACOBI)
    return str(path)


class TestCLI:
    def test_run_with_dist_workers(self, jacobi_program_file, capsys):
        args = ["run", jacobi_program_file, "-p", "m=8",
                "-p", "tol=1e-3"]
        assert main(args) == 0
        expect = capsys.readouterr().out
        assert main(args + ["--dist-workers", "2"]) == 0
        out = capsys.readouterr().out
        # The report grows dist lines, but the grid itself — the last
        # m lines of output — is identical.
        assert out.splitlines()[-8:] == expect.splitlines()[-8:]
        assert "dist: main: stencil" in out

    def test_analyze_reports_dist_area(self, jacobi_program_file,
                                       capsys):
        assert main(["analyze", jacobi_program_file, "-p", "m=8",
                     "-p", "tol=1e-3", "--dist-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "dist" in out

    def test_negative_count_rejected(self, jacobi_program_file):
        with pytest.raises(SystemExit, match="non-negative"):
            main(["run", jacobi_program_file, "-p", "m=8",
                  "-p", "tol=1e-3", "--dist-workers", "-2"])

    def test_single_definition_rejected(self, tmp_path):
        path = tmp_path / "jacobi.hs"
        path.write_text(kernels.JACOBI)
        with pytest.raises(SystemExit, match="multi-binding"):
            main(["run", str(path), "-p", "m=6",
                  "--dist-workers", "2"])
