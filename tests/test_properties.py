"""Property-based end-to-end tests: compiled code vs the lazy oracle.

Random recurrences are generated as surface source, compiled through
the full pipeline, and compared element-by-element against the
reference interpreter.  Whatever strategy the compiler picks
(thunkless, possibly with split passes and backward loops, or the
thunked fallback), the values must agree — this is the master safety
property of the whole system.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompileError, compile_array, evaluate
from repro.runtime.errors import ArrayError

# ----------------------------------------------------------------------
# Random 1-D recurrences over a single loop with several clauses.
#
# Clause template k (of `stride` clauses) writes `stride*i - k` and may
# read another clause's element at a bounded instance offset, guarded
# to stay within the loop range.


@st.composite
def recurrence_1d(draw):
    stride = draw(st.integers(1, 3))
    trip = draw(st.integers(3, 10))
    clauses = []
    for k in range(stride):
        has_read = draw(st.booleans())
        if has_read:
            target = draw(st.integers(0, stride - 1))
            offset = draw(st.integers(-2, 2))
            if offset == 0 and target == k:
                offset = 1  # avoid element self-dependence
            clauses.append((k, target, offset))
        else:
            clauses.append((k, None, None))
    return stride, trip, clauses


def render_1d(stride, trip, clauses):
    parts = []
    for k, target, offset in clauses:
        write = f"{stride}*i - {k}" if k else f"{stride}*i"
        if target is None:
            value = f"i + {k}"
        else:
            read_ix = f"{stride}*(i + {offset}) - {target}"
            low_ok = f"i + {offset} >= 1"
            high_ok = f"i + {offset} <= {trip}"
            value = (
                f"(if {low_ok} && {high_ok} then a!({read_ix}) else 0)"
                f" + i + {k}"
            )
        parts.append(f"[ {write} := {value} ]")
    body = " ++ ".join(parts)
    return (
        f"letrec* a = array ({stride * 1 - (stride - 1)},{stride * trip})\n"
        f"  [* {body} | i <- [1..{trip}] *]\nin a"
    )


@settings(max_examples=120, deadline=None)
@given(recurrence_1d())
def test_random_1d_recurrences_match_oracle(case):
    stride, trip, clauses = case
    src = render_1d(stride, trip, clauses)
    try:
        oracle = evaluate(src, deep=False)
        want = [oracle.at(s) for s in oracle.bounds.range()]
        oracle_error = None
    except ArrayError as exc:
        want = None
        oracle_error = type(exc)

    try:
        compiled = compile_array(src)
    except CompileError:
        # Static rejection is only allowed for genuinely erroneous
        # definitions (certain collisions); our generator never makes
        # those, so a CompileError would be a bug.
        raise AssertionError(f"compiler rejected a valid program:\n{src}")

    if oracle_error is not None:
        # The program is semantically bottom (a true element cycle);
        # whatever code was generated must also fail.
        with pytest.raises(Exception):
            compiled({})
        return
    got = compiled({})
    assert got.to_list() == want, src


# ----------------------------------------------------------------------
# Random 2-D stencils over the paper's wavefront shape.


@st.composite
def stencil_2d(draw):
    n = draw(st.integers(3, 7))
    offsets = draw(
        st.lists(
            st.tuples(st.integers(-1, 1), st.integers(-1, 1)).filter(
                lambda d: d != (0, 0)
            ),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return n, offsets


def render_2d(n, offsets):
    reads = []
    for di, dj in offsets:
        read = f"a!(i + {di}, j + {dj})"
        guard = (
            f"i + {di} >= 1 && i + {di} <= {n} && "
            f"j + {dj} >= 1 && j + {dj} <= {n}"
        )
        reads.append(f"(if {guard} then {read} else 0)")
    value = " + ".join(reads + ["10*i + j"])
    return (
        f"letrec* a = array ((1,1),({n},{n}))\n"
        f"  [ (i,j) := {value} | i <- [1..{n}], j <- [1..{n}] ]\nin a"
    )


@settings(max_examples=60, deadline=None)
@given(stencil_2d())
def test_random_2d_stencils_match_oracle(case):
    n, offsets = case
    src = render_2d(n, offsets)
    try:
        oracle = evaluate(src, deep=False)
        want = [oracle.at(s) for s in oracle.bounds.range()]
        oracle_error = None
    except ArrayError as exc:
        want = None
        oracle_error = type(exc)

    compiled = compile_array(src)
    if oracle_error is not None:
        with pytest.raises(Exception):
            compiled({})
        return
    assert compiled({}).to_list() == want, src


# ----------------------------------------------------------------------
# Reductions: deforested codegen vs interpreter.


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 15),
    coefficient=st.integers(-3, 3),
    modulus=st.integers(2, 5),
)
def test_random_reductions_match_oracle(n, coefficient, modulus):
    src = (
        f"letrec* a = array (1,{n}) "
        f"[ i := sum [ {coefficient}*k | k <- [1..i], "
        f"mod k {modulus} == 0 ] | i <- [1..{n}] ] in a"
    )
    compiled = compile_array(src)
    oracle = evaluate(src, deep=False)
    assert compiled({}).to_list() == [
        oracle.at(i) for i in range(1, n + 1)
    ]
