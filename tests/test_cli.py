"""The ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


@pytest.fixture
def squares_file(tmp_path):
    path = tmp_path / "squares.hs"
    path.write_text(
        "letrec* a = array (1,n) [ i := i*i | i <- [1..n] ] in a"
    )
    return str(path)


@pytest.fixture
def wavefront_file(tmp_path):
    from repro.kernels import WAVEFRONT

    path = tmp_path / "wavefront.hs"
    path.write_text(WAVEFRONT)
    return str(path)


class TestCommands:
    def test_run(self, squares_file, capsys):
        assert main(["run", squares_file, "-p", "n=4"]) == 0
        assert "[1, 4, 9, 16]" in capsys.readouterr().out

    def test_oracle_matches_run(self, squares_file, capsys):
        main(["run", squares_file, "-p", "n=4"])
        run_out = capsys.readouterr().out
        main(["oracle", squares_file, "-p", "n=4"])
        assert capsys.readouterr().out == run_out

    def test_analyze(self, wavefront_file, capsys):
        assert main(["analyze", wavefront_file, "-p", "n=5"]) == 0
        out = capsys.readouterr().out
        assert "3 -> 3 (<,=)" in out
        assert "collisions: none" in out
        assert "forward" in out

    def test_compile_prints_source(self, squares_file, capsys):
        assert main(["compile", squares_file, "-p", "n=4"]) == 0
        out = capsys.readouterr().out
        assert "def _build(_env):" in out
        assert "strategy: thunkless" in out

    def test_compile_vectorize(self, squares_file, capsys):
        assert main(
            ["compile", squares_file, "-p", "n=4", "--vectorize"]
        ) == 0
        assert "_vslice(" in capsys.readouterr().out

    def test_forced_thunked(self, squares_file, capsys):
        assert main(
            ["compile", squares_file, "-p", "n=4",
             "--strategy", "thunked"]
        ) == 0
        assert "NonStrictArray" in capsys.readouterr().out

    def test_two_dimensional_grid_output(self, wavefront_file, capsys):
        main(["run", wavefront_file, "-p", "n=3"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_bad_param(self, squares_file):
        with pytest.raises(SystemExit):
            main(["run", squares_file, "-p", "n"])

    def test_inplace_compile(self, tmp_path, capsys):
        from repro.kernels import JACOBI

        path = tmp_path / "jacobi.hs"
        path.write_text(JACOBI)
        assert main(
            ["compile", str(path), "-p", "m=8", "--inplace", "u"]
        ) == 0
        out = capsys.readouterr().out
        assert "_snap_" in out  # node-splitting rings present
