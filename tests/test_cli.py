"""The ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


@pytest.fixture
def squares_file(tmp_path):
    path = tmp_path / "squares.hs"
    path.write_text(
        "letrec* a = array (1,n) [ i := i*i | i <- [1..n] ] in a"
    )
    return str(path)


@pytest.fixture
def wavefront_file(tmp_path):
    from repro.kernels import WAVEFRONT

    path = tmp_path / "wavefront.hs"
    path.write_text(WAVEFRONT)
    return str(path)


class TestCommands:
    def test_run(self, squares_file, capsys):
        assert main(["run", squares_file, "-p", "n=4"]) == 0
        assert "[1, 4, 9, 16]" in capsys.readouterr().out

    def test_oracle_matches_run(self, squares_file, capsys):
        main(["run", squares_file, "-p", "n=4"])
        run_out = capsys.readouterr().out
        main(["oracle", squares_file, "-p", "n=4"])
        assert capsys.readouterr().out == run_out

    def test_analyze(self, wavefront_file, capsys):
        assert main(["analyze", wavefront_file, "-p", "n=5"]) == 0
        out = capsys.readouterr().out
        assert "3 -> 3 (<,=)" in out
        assert "collisions: none" in out
        assert "forward" in out

    def test_compile_prints_source(self, squares_file, capsys):
        assert main(["compile", squares_file, "-p", "n=4"]) == 0
        out = capsys.readouterr().out
        assert "def _build(_env):" in out
        assert "strategy: thunkless" in out

    def test_compile_vectorize(self, squares_file, capsys):
        assert main(
            ["compile", squares_file, "-p", "n=4", "--vectorize"]
        ) == 0
        assert "_vslice(" in capsys.readouterr().out

    def test_forced_thunked(self, squares_file, capsys):
        assert main(
            ["compile", squares_file, "-p", "n=4",
             "--strategy", "thunked"]
        ) == 0
        assert "NonStrictArray" in capsys.readouterr().out

    def test_two_dimensional_grid_output(self, wavefront_file, capsys):
        main(["run", wavefront_file, "-p", "n=3"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_bad_param(self, squares_file):
        with pytest.raises(SystemExit):
            main(["run", squares_file, "-p", "n"])

    def test_inplace_compile(self, tmp_path, capsys):
        from repro.kernels import JACOBI

        path = tmp_path / "jacobi.hs"
        path.write_text(JACOBI)
        assert main(
            ["compile", str(path), "-p", "m=8", "--inplace", "u"]
        ) == 0
        out = capsys.readouterr().out
        assert "_snap_" in out  # node-splitting rings present


class TestParams:
    """``-p`` accepts ints and floats, and explains anything else."""

    def test_float_param(self, tmp_path, capsys):
        from repro.kernels import SOR

        path = tmp_path / "sor.hs"
        path.write_text(SOR)
        assert main(
            ["compile", str(path), "-p", "m=6", "-p", "omega=1.5",
             "--inplace", "u"]
        ) == 0
        assert "def _build(_env):" in capsys.readouterr().out

    def test_scientific_notation_becomes_int(self, squares_file,
                                             capsys):
        # Regression: ``-p n=1e3`` used to crash with an opaque
        # ValueError from int().
        assert main(["run", squares_file, "-p", "n=1e1"]) == 0
        assert "100" in capsys.readouterr().out

    def test_non_number_has_clear_message(self, squares_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", squares_file, "-p", "n=abc"])
        message = str(exc_info.value)
        assert "n=abc" in message
        assert "not a number" in message

    def test_missing_value_still_rejected(self, squares_file):
        with pytest.raises(SystemExit):
            main(["run", squares_file, "-p", "n="])


class TestInplaceOptions:
    """``--inplace`` must propagate codegen options (regression)."""

    def test_vectorize_reaches_inplace_pipeline(self, tmp_path):
        # SOR's anti reads would vectorize into dangling numpy views;
        # the compile must fail loudly, not emit broken code (the old
        # driver silently dropped --vectorize here).
        from repro.kernels import SOR

        path = tmp_path / "sor.hs"
        path.write_text(SOR)
        with pytest.raises(SystemExit) as exc_info:
            main(["compile", str(path), "-p", "m=6", "-p", "omega=1",
                  "--inplace", "u", "--vectorize"])
        assert "vectorize" in str(exc_info.value)

    def test_vectorize_noop_inplace_still_compiles(self, tmp_path,
                                                   capsys):
        # Jacobi: no loop qualifies, so the flag is an honoured no-op.
        from repro.kernels import JACOBI

        path = tmp_path / "jacobi.hs"
        path.write_text(JACOBI)
        assert main(
            ["compile", str(path), "-p", "m=8", "--inplace", "u",
             "--vectorize"]
        ) == 0
        assert "_snap_" in capsys.readouterr().out


class TestParallelFlag:
    @pytest.fixture
    def sor_file(self, tmp_path):
        from repro.kernels import SOR_MONOLITHIC

        path = tmp_path / "sor_mono.hs"
        path.write_text(SOR_MONOLITHIC)
        return str(path)

    def test_compile_parallel_emits_wavefront(self, sor_file, capsys):
        assert main(
            ["compile", sor_file, "-p", "m=12", "-p", "omega=1.5",
             "--parallel"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel: clause 5: wavefront h=(1,1)" in out
        assert "_vslice(" in out

    def test_run_parallel_matches_plain(self, tmp_path, capsys):
        # Float kernel: the numpy backends compute in float64, so an
        # integer kernel would print 1.0 where the scalar loops print
        # 1 (same rule as --vectorize).
        from repro.kernels import WAVEFRONT_F

        path = tmp_path / "wavefront_f.hs"
        path.write_text(WAVEFRONT_F)
        main(["run", str(path), "-p", "n=5"])
        plain = capsys.readouterr().out
        assert main(["run", str(path), "-p", "n=5",
                     "--parallel"]) == 0
        assert capsys.readouterr().out == plain

    def test_parallel_threads_flag(self, tmp_path, capsys):
        from repro.kernels import MATMUL

        path = tmp_path / "matmul.hs"
        path.write_text(MATMUL)
        assert main(
            ["compile", str(path), "-p", "n=6", "--parallel",
             "--parallel-threads", "2"]
        ) == 0
        assert "chunked across 2 pool threads" in capsys.readouterr().out

    def test_threads_without_parallel_rejected(self, squares_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["compile", squares_file, "-p", "n=4",
                  "--parallel-threads", "2"])
        assert "--parallel-threads" in str(exc_info.value)

    def test_parallel_with_inplace_rejected(self, tmp_path):
        from repro.kernels import JACOBI

        path = tmp_path / "jacobi.hs"
        path.write_text(JACOBI)
        with pytest.raises(SystemExit) as exc_info:
            main(["compile", str(path), "-p", "m=8",
                  "--inplace", "u", "--parallel"])
        assert "--inplace" in str(exc_info.value)


class TestCacheFlag:
    def test_run_with_cache_twice(self, wavefront_file, tmp_path,
                                  capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", wavefront_file, "-p", "n=3",
                     "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert main(["run", wavefront_file, "-p", "n=3",
                     "--cache", cache]) == 0
        assert capsys.readouterr().out == cold

    def test_compile_with_cache_matches_uncached(self, squares_file,
                                                 tmp_path, capsys):
        assert main(["compile", squares_file, "-p", "n=4"]) == 0
        uncached = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        for _ in range(2):  # second round is a disk hit
            assert main(["compile", squares_file, "-p", "n=4",
                         "--cache", cache]) == 0
            assert capsys.readouterr().out == uncached

    def test_serve_stats(self, squares_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["compile", squares_file, "-p", "n=4", "--cache", cache])
        capsys.readouterr()
        assert main(["serve-stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "strategy thunkless: 1" in out

    def test_serve_stats_empty_dir(self, tmp_path, capsys):
        assert main(["serve-stats", "--cache",
                     str(tmp_path / "nowhere")]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_file_required_for_compile(self):
        with pytest.raises(SystemExit):
            main(["compile"])


class TestProgramCommands:
    """Multi-binding programs through the CLI."""

    @pytest.fixture
    def jacobi_file(self, tmp_path):
        from repro.kernels import PROGRAM_JACOBI

        path = tmp_path / "jacobi_prog.hs"
        path.write_text(PROGRAM_JACOBI)
        return str(path)

    @pytest.fixture
    def pipeline_file(self, tmp_path):
        from repro.kernels import PROGRAM_PIPELINE

        path = tmp_path / "pipeline.hs"
        path.write_text(PROGRAM_PIPELINE)
        return str(path)

    def test_run_prints_report_and_grid(self, jacobi_file, capsys):
        assert main(["run", jacobi_file, "-p", "m=6",
                     "-p", "tol=1e-3"]) == 0
        out = capsys.readouterr().out
        assert "topo order: u0 -> step -> main" in out
        assert "iterate:" in out
        # 6x6 grid after the blank line separating report from result
        grid = out.split("\n\n", 1)[1]
        assert len(grid.strip().splitlines()) == 6

    def test_run_matches_oracle(self, pipeline_file, capsys):
        main(["oracle", pipeline_file, "-p", "n=8"])
        oracle = capsys.readouterr().out
        assert main(["run", pipeline_file, "-p", "n=8"]) == 0
        out = capsys.readouterr().out
        assert out.split("\n\n", 1)[1].lstrip() == oracle.lstrip()

    def test_iterate_override(self, jacobi_file, capsys):
        assert main(["run", jacobi_file, "-p", "m=6",
                     "-p", "tol=1e-3", "--iterate", "steps=2"]) == 0
        two = capsys.readouterr().out.split("\n\n", 1)[1]
        assert main(["run", jacobi_file, "-p", "m=6",
                     "-p", "tol=1e-3", "--iterate", "steps=9"]) == 0
        nine = capsys.readouterr().out.split("\n\n", 1)[1]
        assert two != nine

    def test_analyze_names_reuse(self, pipeline_file, capsys):
        assert main(["analyze", pipeline_file, "-p", "n=8"]) == 0
        out = capsys.readouterr().out
        # b now fuses into c, so the reuse edge moved to x <- c and
        # the fused chain is reported alongside it.
        assert "fused: b -> c" in out
        assert "reuse: x overwrites c" in out
        assert "elided" in out

    def test_compile_prints_per_binding_sources(self, pipeline_file,
                                                capsys):
        assert main(["compile", pipeline_file, "-p", "n=8"]) == 0
        out = capsys.readouterr().out
        # b is fused away — its loop body lives inside c's module.
        assert "# --- binding b ---" not in out
        assert "# --- binding c ---" in out
        assert "def _build(_env):" in out

    def test_iterate_on_expression_rejected(self, squares_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", squares_file, "-p", "n=4",
                  "--iterate", "steps=3"])
        assert "single definition" in str(exc_info.value)

    def test_strategy_flag_on_program_rejected(self, pipeline_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["compile", pipeline_file, "-p", "n=8",
                  "--strategy", "thunked"])
        assert "per binding" in str(exc_info.value)

    def test_inplace_flag_on_program_rejected(self, pipeline_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["compile", pipeline_file, "-p", "n=8",
                  "--inplace", "b"])
        assert "reuse" in str(exc_info.value)

    def test_bad_iterate_value(self, jacobi_file):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", jacobi_file, "-p", "m=6",
                  "--iterate", "sweeps=3"])
        assert "tol=FLOAT" in str(exc_info.value)

    def test_program_run_with_cache(self, pipeline_file, tmp_path,
                                    capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", pipeline_file, "-p", "n=8",
                     "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert main(["run", pipeline_file, "-p", "n=8",
                     "--cache", cache]) == 0
        assert capsys.readouterr().out == cold
        assert main(["serve-stats", "--cache", cache]) == 0
        assert "strategy program: 1" in capsys.readouterr().out
