"""Tests for affine expressions and extraction from syntax."""

import pytest
from hypothesis import given, strategies as st

from repro.core.affine import Affine, NonAffineError, affine_from_ast
from repro.lang.parser import parse_expr


class TestAlgebra:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant()
        assert a.evaluate({}) == 5

    def test_var(self):
        a = Affine.var("i", 3)
        assert a.coeff("i") == 3
        assert a.evaluate({"i": 4}) == 12

    def test_add_sub(self):
        a = Affine.var("i") + Affine.var("j", 2) + 1
        b = a - Affine.var("i")
        assert b.coeff("i") == 0
        assert b.coeff("j") == 2
        assert b.const == 1

    def test_zero_coefficients_dropped(self):
        a = Affine.var("i") - Affine.var("i")
        assert a.coeffs == {}
        assert a == Affine.constant(0)

    def test_scale_and_mul(self):
        a = (Affine.var("i") + 2).scale(3)
        assert a.coeff("i") == 3 and a.const == 6
        assert Affine.constant(4) * Affine.var("i") == Affine.var("i", 4)

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonAffineError):
            Affine.var("i") * Affine.var("j")

    def test_neg_rsub(self):
        a = 5 - Affine.var("i")
        assert a.coeff("i") == -1 and a.const == 5

    def test_substitute(self):
        a = Affine.var("i", 2) + 1
        b = a.substitute({"i": Affine.var("t") + 3})
        assert b.coeff("t") == 2 and b.const == 7

    def test_rename(self):
        a = Affine.var("i") + Affine.var("j", -1)
        b = a.rename({"i": "x"})
        assert b.coeff("x") == 1 and b.coeff("j") == -1

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            Affine.var("i").evaluate({})

    def test_hash_eq(self):
        assert len({Affine.var("i") + 1, Affine.var("i") + 1}) == 1


class TestExtraction:
    def extract(self, src, params=None):
        return affine_from_ast(parse_expr(src), params or {})

    def test_linear_forms(self):
        a = self.extract("3*i - 1")
        assert a.coeff("i") == 3 and a.const == -1

    def test_nested_parens(self):
        a = self.extract("3*(i-1)")
        assert a.coeff("i") == 3 and a.const == -3

    def test_both_sides_multiplication(self):
        assert self.extract("i*2").coeff("i") == 2
        assert self.extract("2*i").coeff("i") == 2

    def test_params_become_constants(self):
        a = self.extract("n - i", {"n": 10})
        assert a.const == 10 and a.coeff("i") == -1

    def test_unknown_var_kept_symbolic(self):
        a = self.extract("n - i")
        assert a.coeff("n") == 1

    def test_unary_minus(self):
        assert self.extract("-i").coeff("i") == -1

    def test_nonlinear_rejected(self):
        with pytest.raises(NonAffineError):
            self.extract("i * j")
        with pytest.raises(NonAffineError):
            self.extract("i / 2")
        with pytest.raises(NonAffineError):
            self.extract("a!i + 1")
        with pytest.raises(NonAffineError):
            self.extract("2.5")


@given(
    c1=st.integers(-9, 9), c2=st.integers(-9, 9),
    k1=st.integers(-9, 9), k2=st.integers(-9, 9),
    i=st.integers(-10, 10), j=st.integers(-10, 10),
)
def test_affine_evaluation_homomorphism(c1, c2, k1, k2, i, j):
    a = Affine(c1, {"i": k1})
    b = Affine(c2, {"j": k2})
    env = {"i": i, "j": j}
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)
    assert a.scale(3).evaluate(env) == 3 * a.evaluate(env)
    assert (-a).evaluate(env) == -a.evaluate(env)


@given(
    c=st.integers(-9, 9), k=st.integers(-9, 9), t=st.integers(-9, 9),
    s=st.integers(-9, 9), value=st.integers(-10, 10),
)
def test_substitution_commutes_with_evaluation(c, k, t, s, value):
    a = Affine(c, {"i": k})
    replacement = Affine(t, {"u": s})
    substituted = a.substitute({"i": replacement})
    direct = a.evaluate({"i": replacement.evaluate({"u": value})})
    assert substituted.evaluate({"u": value}) == direct
