"""Hyperplane parallelism analysis (§10 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.core.parallel import (
    dependence_distances,
    find_hyperplane,
)


class TestHyperplaneSearch:
    def test_wavefront_distances(self):
        assert find_hyperplane([(1, 0), (0, 1), (1, 1)]) == (1, 1)

    def test_single_axis(self):
        assert find_hyperplane([(0, 1)]) == (0, 1)
        assert find_hyperplane([(1, 0)]) == (1, 0)

    def test_one_dimensional(self):
        assert find_hyperplane([(1,)]) == (1,)
        assert find_hyperplane([(2,)]) == (1,)

    def test_negative_component(self):
        # Distance (1, -1): h must weight the first axis more.
        h = find_hyperplane([(1, -1), (0, 1)])
        assert h is not None
        assert h[0] * 1 + h[1] * -1 > 0
        assert h[1] > 0

    def test_flattest_plane_preferred(self):
        # (2, 0) alone admits h = (1, 0); not (1, 1).
        assert find_hyperplane([(2, 0)]) == (1, 0)

    def test_no_distances_no_plane(self):
        assert find_hyperplane([]) is None

    @settings(max_examples=80, deadline=None)
    @given(
        distances=st.lists(
            st.tuples(st.integers(0, 2), st.integers(-2, 2)).filter(
                lambda d: d > (0, 0)
            ),
            min_size=1, max_size=4, unique=True,
        )
    )
    def test_found_planes_are_legal(self, distances):
        h = find_hyperplane(distances)
        if h is not None:
            for d in distances:
                assert sum(hk * dk for hk, dk in zip(h, d)) > 0


class TestDistances:
    def test_wavefront(self):
        from repro.kernels import WAVEFRONT

        report = analyze(WAVEFRONT, {"n": 10})
        interior = report.comp.clauses[2]
        distances = dependence_distances(
            report.comp, interior, report.edges
        )
        assert set(distances) == {(1, 0), (0, 1), (1, 1)}

    def test_no_self_dependence(self):
        from repro.kernels import SQUARES

        report = analyze(SQUARES, {"n": 10})
        assert dependence_distances(
            report.comp, report.comp.clauses[0], report.edges
        ) == ()

    def test_non_uniform_returns_none(self):
        src = """
        letrec a = array (1,40)
          [* [ i := (if i > 1 then a!(div i 2) else 0) + 1 ]
           | i <- [1..40] *]
        in a
        """
        report = analyze(src)
        assert dependence_distances(
            report.comp, report.comp.clauses[0], report.edges
        ) is None


class TestProfiles:
    def test_wavefront_profile(self):
        from repro.kernels import WAVEFRONT

        report = analyze(WAVEFRONT, {"n": 20})
        profiles = {p.clause.index: p for p in report.parallelism}
        interior = profiles[2]
        assert interior.hyperplane == (1, 1)
        assert interior.work == 19 * 19
        assert interior.steps == 2 * 18 + 1
        assert interior.speedup_bound == pytest.approx(361 / 37)
        # Borders are fully parallel.
        assert profiles[0].fully_parallel
        assert profiles[0].steps == 1

    def test_sequential_recurrence_bound_is_one(self):
        from repro.kernels import FORWARD_RECURRENCE

        report = analyze(FORWARD_RECURRENCE, {"n": 25})
        interior = [p for p in report.parallelism
                    if p.clause.index == 1][0]
        assert interior.hyperplane == (1,)
        assert interior.speedup_bound == 1.0

    def test_column_recurrence_row_parallel(self):
        src = """
        letrec a = array ((1,1),(m,m))
          [* (i,j) := (if j > 1 then a!(i,j-1) else 0) + 1
           | i <- [1..m], j <- [1..m] *]
        in a
        """
        report = analyze(src, {"m": 12})
        profile = report.parallelism[0]
        assert profile.hyperplane == (0, 1)
        assert profile.steps == 12
        assert profile.speedup_bound == 12.0

    def test_summary_mentions_wavefront(self):
        from repro.kernels import WAVEFRONT

        report = analyze(WAVEFRONT, {"n": 8})
        text = report.summary()
        assert "wavefront h=(1, 1)" in text
        assert "speedup bound" in text

    def test_symbolic_sizes_give_plane_without_counts(self):
        from repro.kernels import WAVEFRONT

        report = analyze(WAVEFRONT)  # no params
        interior = [p for p in report.parallelism
                    if p.clause.index == 2][0]
        # Distances need the exact test, which needs trip counts: the
        # profile degrades gracefully.
        assert interior.hyperplane is None or interior.steps is None
