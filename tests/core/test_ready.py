"""The ready/not-ready marking DFS (paper §8.1.3)."""

from hypothesis import given, settings, strategies as st

from repro.core.graph import Digraph
from repro.core.ready import mark_ready


def graph_of(edges, vertices):
    g = Digraph(vertices)
    for src, dst, label in edges:
        g.add_edge(src, dst, label)
    return g


class TestPaperCases:
    def test_abc_example_forward(self):
        # A -> B (<), B -> C (>), A -> C (=): first forward pass
        # schedules A and B; C must wait behind the (>) edge.
        g = graph_of(
            [("A", "B", "fwd"), ("B", "C", "bwd"), ("A", "C", "order")],
            "ABC",
        )
        assert mark_ready(g, "forward") == {"A", "B"}

    def test_abc_example_backward(self):
        g = graph_of(
            [("A", "B", "fwd"), ("B", "C", "bwd"), ("A", "C", "order")],
            "ABC",
        )
        assert mark_ready(g, "backward") == {"A"}

    def test_taint_propagates_through_clean_edges(self):
        # root -bwd-> x -order-> y: both x and y are not-ready forward.
        g = graph_of(
            [("r", "x", "bwd"), ("x", "y", "order")], "rxy"
        )
        assert mark_ready(g, "forward") == {"r"}

    def test_remarking_clean_then_tainted(self):
        # y reached first via a clean path, later via a tainted one:
        # the paper's fourth DFS case must demote y and descendants.
        g = Digraph("rxyz")
        g.add_edge("r", "y", "order")   # clean path first
        g.add_edge("r", "x", "bwd")     # tainted branch
        g.add_edge("x", "y", "order")   # re-reaches y tainted
        g.add_edge("y", "z", "order")
        assert mark_ready(g, "forward") == {"r"}

    def test_all_order_edges_everything_ready(self):
        g = graph_of(
            [("a", "b", "order"), ("b", "c", "order")], "abc"
        )
        assert mark_ready(g, "forward") == {"a", "b", "c"}
        assert mark_ready(g, "backward") == {"a", "b", "c"}

    def test_both_label_blocks_either_direction(self):
        g = graph_of([("a", "b", "both")], "ab")
        assert mark_ready(g, "forward") == {"a"}
        assert mark_ready(g, "backward") == {"a"}

    def test_roots_always_ready(self):
        g = graph_of([("a", "b", "bwd"), ("c", "b", "bwd")], "abc")
        ready = mark_ready(g, "forward")
        assert {"a", "c"} <= ready
        assert "b" not in ready

    def test_bad_direction_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            mark_ready(Digraph("a"), "sideways")


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(1, 7),
    edges=st.lists(
        st.tuples(
            st.integers(0, 6),
            st.integers(0, 6),
            st.sampled_from(["order", "fwd", "bwd"]),
        ),
        max_size=15,
    ),
    direction=st.sampled_from(["forward", "backward"]),
)
def test_ready_set_matches_specification(n, edges, direction):
    """ready == not reachable from a root via a path with a bad edge."""
    g = Digraph(range(n))
    seen = set()
    for src, dst, label in edges:
        if src < n and dst < n and src != dst and (src, dst) not in seen:
            # Keep the graph acyclic: only forward edges by index.
            if src < dst:
                g.add_edge(src, dst, label)
                seen.add((src, dst))
    bad = {"forward": "bwd", "backward": "fwd"}[direction]

    # Specification by explicit path enumeration.
    indegree = {v: 0 for v in g.succ}
    for _, dst, _ in g.edges():
        indegree[dst] += 1
    roots = [v for v, c in indegree.items() if c == 0]

    tainted = set()
    frontier = []
    for root in roots:
        for dst, label in g.succ[root]:
            frontier.append((dst, label == bad or label == "both"))
    # BFS tracking whether any path is tainted.
    state = {}
    while frontier:
        vertex, is_tainted = frontier.pop()
        previous = state.get(vertex)
        if previous is not None and (previous or not is_tainted):
            continue
        state[vertex] = previous or is_tainted if previous is not None \
            else is_tainted
        if is_tainted:
            tainted.add(vertex)
        for dst, label in g.succ[vertex]:
            frontier.append(
                (dst, is_tainted or label == bad or label == "both")
            )

    expected = {v for v in g.succ if v not in tainted}
    assert mark_ready(g, direction) == expected
