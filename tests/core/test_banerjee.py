"""Banerjee inequality tests, validated against brute-force extrema.

The key property: for every direction constraint, the per-term bounds
computed by vertex enumeration equal the true min/max of
``a*x - b*y`` over all integer pairs in the constrained region — and
therefore the test is a sound necessary condition for dependence.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affine import Affine
from repro.core.banerjee import (
    banerjee_test,
    equation_bounds,
    paper_unconstrained_bounds,
    term_bounds,
)
from repro.core.subscripts import LoopInfo, Reference, Term, build_equations


def brute_bounds(a, b, count, constraint):
    values = []
    for x in range(1, count + 1):
        for y in range(1, count + 1):
            if constraint == "<" and not x < y:
                continue
            if constraint == ">" and not x > y:
                continue
            if constraint == "=" and x != y:
                continue
            values.append(a * x - b * y)
    if not values:
        return None
    return min(values), max(values)


class TestTermBounds:
    @pytest.mark.parametrize("constraint", ["*", "<", "=", ">"])
    def test_small_exhaustive(self, constraint):
        for a in range(-4, 5):
            for b in range(-4, 5):
                for count in range(1, 6):
                    term = Term(LoopInfo("i", count), a, b)
                    got = term_bounds(term, constraint)
                    want = brute_bounds(a, b, count, constraint)
                    assert got == want, (a, b, count, constraint)

    def test_infeasible_direction_small_loop(self):
        term = Term(LoopInfo("i", 1), 1, 1)
        assert term_bounds(term, "<") is None
        assert term_bounds(term, ">") is None
        assert term_bounds(term, "=") == (0, 0)

    def test_zero_trip_count(self):
        term = Term(LoopInfo("i", 0), 1, 1)
        assert term_bounds(term, "*") is None

    def test_unknown_count_unbounded(self):
        term = Term(LoopInfo("i", None), 2, 1)
        low, high = term_bounds(term, "*")
        assert low == float("-inf") and high == float("inf")

    def test_unknown_count_zero_coefficients(self):
        term = Term(LoopInfo("i", None), 0, 0)
        assert term_bounds(term, "*") == (0, 0)

    def test_one_sided_terms(self):
        # Unshared loop of the first reference: a*x over [1..M].
        term = Term(LoopInfo("i", 10), 3, None)
        assert term_bounds(term, "*") == (3, 30)
        term = Term(LoopInfo("i", 10), None, 3)
        assert term_bounds(term, "*") == (-30, -3)

    def test_matches_paper_lemma_unconstrained(self):
        for a in range(-5, 6):
            for b in range(-5, 6):
                for count in [1, 2, 3, 7]:
                    term = Term(LoopInfo("i", count), a, b)
                    assert term_bounds(term, "*") == \
                        paper_unconstrained_bounds(a, b, count)


@settings(max_examples=300, deadline=None)
@given(
    a=st.integers(-10, 10),
    b=st.integers(-10, 10),
    count=st.integers(1, 12),
    constraint=st.sampled_from(["*", "<", "=", ">"]),
)
def test_term_bounds_property(a, b, count, constraint):
    term = Term(LoopInfo("i", count), a, b)
    assert term_bounds(term, constraint) == brute_bounds(
        a, b, count, constraint
    )


def make_equation(f_affines, g_affines, loops):
    f = Reference("a", tuple(f_affines), loops, is_write=True)
    g = Reference("a", tuple(g_affines), loops)
    return build_equations(f, g)


class TestEquationLevel:
    def test_stride_disjoint_proved_independent(self):
        # write 2*i, read 2*i+1: never equal (but GCD is the sharper
        # test here; Banerjee still bounds correctly).
        i = LoopInfo("i", 10)
        eqs = make_equation(
            [Affine.var("i", 2)], [Affine(1, {"i": 2})], (i,)
        )
        low, high = equation_bounds(eqs[0], ("*",))
        assert low <= eqs[0].constant <= high  # Banerjee can't refute...
        from repro.core.gcd_test import gcd_test
        assert not gcd_test(eqs[0])  # ...but GCD does.

    def test_far_constant_offset_refuted(self):
        # write i, read i+100 with M=10: Banerjee refutes.
        i = LoopInfo("i", 10)
        eqs = make_equation(
            [Affine.var("i")], [Affine(100, {"i": 1})], (i,)
        )
        assert not banerjee_test(eqs[0])

    def test_direction_constraints_refine(self):
        # write i, read i-1: dependence only with source earlier (<).
        i = LoopInfo("i", 10)
        eqs = make_equation(
            [Affine.var("i")], [Affine(-1, {"i": 1})], (i,)
        )
        assert banerjee_test(eqs[0], ("<",))
        assert not banerjee_test(eqs[0], ("=",))
        assert not banerjee_test(eqs[0], (">",))

    def test_unshared_loop_contribution(self):
        # Write (i), read (j) in sibling loops: f = x, g = y + 5,
        # x in [1..3], y in [1..3]: difference in [-7, -3]; no zero.
        i = LoopInfo("i", 3)
        j = LoopInfo("j", 3)
        f = Reference("a", (Affine.var("i"),), (i,), is_write=True)
        g = Reference("a", (Affine(5, {"j": 1}),), (j,))
        eqs = build_equations(f, g)
        assert eqs[0].depth == 0
        assert not banerjee_test(eqs[0], ())

    def test_unshared_loop_overlap_possible(self):
        i = LoopInfo("i", 5)
        j = LoopInfo("j", 5)
        f = Reference("a", (Affine.var("i"),), (i,), is_write=True)
        g = Reference("a", (Affine.var("j"),), (j,))
        eqs = build_equations(f, g)
        assert banerjee_test(eqs[0], ())

    def test_infeasible_region_returns_none(self):
        i = LoopInfo("i", 1)
        eqs = make_equation([Affine.var("i")], [Affine.var("i")], (i,))
        assert equation_bounds(eqs[0], ("<",)) is None

    def test_direction_vector_length_checked(self):
        i = LoopInfo("i", 10)
        eqs = make_equation([Affine.var("i")], [Affine.var("i")], (i,))
        with pytest.raises(ValueError):
            banerjee_test(eqs[0], ("<", "="))


@settings(max_examples=200, deadline=None)
@given(
    a0=st.integers(-5, 5), a1=st.integers(-4, 4), a2=st.integers(-4, 4),
    b0=st.integers(-5, 5), b1=st.integers(-4, 4), b2=st.integers(-4, 4),
    m1=st.integers(1, 5), m2=st.integers(1, 5),
    d1=st.sampled_from(["*", "<", "=", ">"]),
    d2=st.sampled_from(["*", "<", "=", ">"]),
)
def test_banerjee_sound_vs_brute_force_2d(
    a0, a1, a2, b0, b1, b2, m1, m2, d1, d2
):
    """If an integer solution exists in the region, Banerjee says so."""
    i = LoopInfo("i", m1)
    j = LoopInfo("j", m2)
    loops = (i, j)
    f = [Affine(a0, {"i": a1, "j": a2})]
    g = [Affine(b0, {"i": b1, "j": b2})]
    eqs = make_equation(f, g, loops)

    def ok(x, y, d):
        return {"*": True, "<": x < y, "=": x == y, ">": x > y}[d]

    exists = any(
        a0 + a1 * x1 + a2 * x2 == b0 + b1 * y1 + b2 * y2
        for x1 in range(1, m1 + 1)
        for y1 in range(1, m1 + 1)
        for x2 in range(1, m2 + 1)
        for y2 in range(1, m2 + 1)
        if ok(x1, y1, d1) and ok(x2, y2, d2)
    )
    if exists:
        assert banerjee_test(eqs[0], (d1, d2))
