"""Loop interchange (§8.2/§10 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CodegenOptions, compile_array, evaluate
from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.dependence import flow_edges
from repro.core.interchange import (
    interchange,
    perfect_rectangular_nest,
    plan_interchanges,
)
from repro.lang.parser import parse_expr

COLUMN_RECURRENCE = """
letrec a = array ((1,1),(m,m))
  ([ (i,1) := 0.5 * fromIntegral i | i <- [1..m] ] ++
   [ (i,j) := a!(i,j-1) + 1.0 | i <- [1..m], j <- [2..m] ])
in a
"""


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


class TestRecognition:
    def test_perfect_nest_recognized(self):
        comp = comp_of(COLUMN_RECURRENCE, {"m": 6})
        nest = comp.roots[1]
        assert perfect_rectangular_nest(nest) is not None

    def test_imperfect_nest_rejected(self):
        src = """
        array (1,100)
          [* [ 10*i := 0.0 ] ++
             [* [ 10*i + j := 1.0 ] | j <- [1..9] *]
           | i <- [1..9] *]
        """
        comp = comp_of(src)
        assert perfect_rectangular_nest(comp.roots[0]) is None

    def test_symbolic_bounds_rejected(self):
        comp = comp_of(COLUMN_RECURRENCE)  # no params: counts unknown
        assert perfect_rectangular_nest(comp.roots[1]) is None

    def test_planner_targets_inner_carried(self):
        comp = comp_of(COLUMN_RECURRENCE, {"m": 6})
        proposals = plan_interchanges(comp, flow_edges(comp))
        assert len(proposals) == 1
        assert proposals[0].var == "i"

    def test_planner_skips_outer_carried(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 6})
        # The wavefront interior carries dependences at *both* levels.
        assert plan_interchanges(comp, flow_edges(comp)) == []

    def test_planner_skips_dependence_free(self):
        src = """
        array ((1,1),(4,4))
          [ (i,j) := 1.0 | i <- [1..4], j <- [1..4] ]
        """
        comp = comp_of(src)
        assert plan_interchanges(comp, flow_edges(comp)) == []


class TestTransformation:
    def test_directions_flip(self):
        comp = comp_of(COLUMN_RECURRENCE, {"m": 6})
        before = {e.direction for e in flow_edges(comp)
                  if e.src is e.dst}
        assert before == {("=", "<")}
        interchange(comp, comp.roots[1])
        after = {e.direction for e in flow_edges(comp)
                 if e.src is e.dst}
        assert after == {("<", "=")}

    def test_clause_loop_chains_updated(self):
        comp = comp_of(COLUMN_RECURRENCE, {"m": 6})
        interchange(comp, comp.roots[1])
        interior = comp.clauses[1]
        assert [loop.var for loop in interior.loops] == ["j", "i"]

    def test_rejects_non_perfect(self):
        comp = comp_of(COLUMN_RECURRENCE)  # symbolic: not rectangular
        with pytest.raises(ValueError):
            interchange(comp, comp.roots[1])


class TestEndToEnd:
    def test_interchange_enables_vectorization(self):
        m = 8
        vec = compile_array(COLUMN_RECURRENCE, params={"m": m},
                            options=CodegenOptions(vectorize=True))
        assert any("interchanged" in n for n in vec.report.notes)
        assert "_vslice(" in vec.source
        oracle = evaluate(COLUMN_RECURRENCE, bindings={"m": m}, deep=False)
        want = [float(oracle.at(s)) for s in oracle.bounds.range()]
        assert vec({"m": m}).to_list() == want

    def test_without_vectorize_no_interchange(self):
        plain = compile_array(COLUMN_RECURRENCE, params={"m": 8})
        assert not any("interchanged" in n for n in plain.report.notes)


@settings(max_examples=40, deadline=None)
@given(m=st.integers(2, 8), offset=st.integers(1, 2))
def test_interchanged_matches_oracle(m, offset):
    """Random column recurrences survive interchange + vectorize."""
    if offset >= m:
        return
    src = f"""
    letrec a = array ((1,1),({m},{m}))
      ([ (i,j) := 1.0 * fromIntegral (i + j)
         | i <- [1..{m}], j <- [1..{offset}] ] ++
       [ (i,j) := a!(i,j-{offset}) + 1.0
         | i <- [1..{m}], j <- [{offset + 1}..{m}] ])
    in a
    """
    vec = compile_array(src, options=CodegenOptions(vectorize=True))
    oracle = evaluate(src, deep=False)
    want = [float(oracle.at(s)) for s in oracle.bounds.range()]
    assert vec({}).to_list() == pytest.approx(want)
