"""In-place planning: node-splitting read classification (paper §9)."""

from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.dependence import anti_edges, flow_edges
from repro.core.inplace import plan_inplace
from repro.core.schedule import schedule_comp
from repro.lang.parser import parse_expr


def plan_for(src, old, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    comp = build_array_comp(name, bounds_ast, pairs_ast, params)
    edges = (flow_edges(comp) if comp.name else []) + anti_edges(comp, old)
    schedule = schedule_comp(comp, edges, allow_node_splitting=True)
    assert schedule.ok, schedule.failures
    plan = plan_inplace(
        comp, old, schedule.clause_directions(), schedule.clause_positions()
    )
    return comp, schedule, plan


def modes(plan, comp):
    return {
        clause.index + 1: [p.mode for p in plan.plans_for(clause)]
        for clause in comp.clauses
    }


class TestSwap:
    def test_one_hoist_one_direct(self):
        from repro.kernels import SWAP

        comp, schedule, plan = plan_for(
            SWAP, "a", {"m": 6, "n": 8, "i": 2, "k": 5}
        )
        assert plan.mode == "split"
        all_modes = modes(plan, comp)
        # The first-ordered clause reads directly; the second's read
        # was killed by the first's store and must be hoisted.
        flattened = sorted(m for ms in all_modes.values() for m in ms)
        assert flattened == ["direct", "hoist"]
        assert len(plan.hoisted) == 1
        assert plan.snapshots == []


class TestJacobi:
    def test_two_snapshots_two_direct(self):
        from repro.kernels import JACOBI

        comp, schedule, plan = plan_for(JACOBI, "u", {"m": 10})
        assert plan.mode == "split"
        reads = plan.plans_for(comp.clauses[0])
        by_mode = {}
        for read_plan in reads:
            by_mode.setdefault(read_plan.mode, []).append(read_plan)
        assert len(by_mode["direct"]) == 2   # (i+1,j), (i,j+1)
        assert len(by_mode["snapshot"]) == 2  # (i-1,j), (i,j-1)
        levels = sorted(p.level for p in by_mode["snapshot"])
        assert levels == [0, 1]  # one row ring, one scalar ring
        assert all(p.distance == 1 for p in by_mode["snapshot"])
        assert len(plan.snapshots) == 2

    def test_wider_stencil_distance(self):
        src = """
        array (1,n)
          [* i := u!(i-3) + u!(i+1) | i <- [4..n-1] *]
        """
        comp, schedule, plan = plan_for(src, "u", {"n": 20})
        snapshot = [p for p in plan.plans_for(comp.clauses[0])
                    if p.mode == "snapshot"]
        assert len(snapshot) == 1
        assert snapshot[0].distance == 3
        assert plan.snapshots[0].depth == 3


class TestGaussSeidel:
    def test_all_direct(self):
        from repro.kernels import GAUSS_SEIDEL

        comp, schedule, plan = plan_for(GAUSS_SEIDEL, "u", {"m": 10})
        assert plan.mode == "split"
        assert all(
            p.mode == "direct" for p in plan.plans_for(comp.clauses[0])
        )
        assert plan.snapshots == []
        assert plan.hoisted == []


class TestFallback:
    def test_reverse_whole_copy(self):
        from repro.kernels import REVERSE

        comp, schedule, plan = plan_for(REVERSE, "a", {"n": 9})
        assert plan.mode == "whole_copy"
        assert plan.reason

    def test_transpose_whole_copy(self):
        src = """
        array ((1,1),(n,n))
          [* (i,j) := a!(j,i) | i <- [1..n], j <- [1..n] *]
        """
        comp, schedule, plan = plan_for(src, "a", {"n": 5})
        assert plan.mode == "whole_copy"


class TestDirectionAwareness:
    def test_backward_schedule_flips_protection(self):
        # Reading u!(i+1): under a forward loop the cell is still old
        # (direct); if a flow dependence forces the loop backward, the
        # same read becomes killed and needs a snapshot.
        forward_src = """
        array (1,n) [* i := u!(i+1) | i <- [1..n-1] *]
        """
        comp, schedule, plan = plan_for(forward_src, "u", {"n": 10})
        assert [p.mode for p in plan.plans_for(comp.clauses[0])] == ["direct"]

        backward_src = """
        letrec a = array (1,n)
          ([ n := 0 ] ++
           [* i := a!(i+1) + u!(i+1) | i <- [1..n-2] *])
        in a
        """
        comp, schedule, plan = plan_for(backward_src, "u", {"n": 10})
        directions = schedule.clause_directions()
        interior = comp.clauses[1]
        assert directions[interior.index] == ("backward",)
        read_modes = [p.mode for p in plan.plans_for(interior)]
        assert read_modes == ["snapshot"]

    def test_cross_clause_kill_outside_shared_loops_falls_back(self):
        # Clause 1 must run first (flow), but it kills a cell clause 2
        # still reads from the old array, and the clauses share no
        # loop: no hoist point exists, so the planner must degrade to
        # the whole-copy strategy.
        src = """
        letrec a = array (1,n)
          ([ n := 0 ] ++
           [* i := a!(i+1) + u!(i+1) | i <- [1..n-1] *])
        in a
        """
        comp, schedule, plan = plan_for(src, "u", {"n": 10})
        assert plan.mode == "whole_copy"
