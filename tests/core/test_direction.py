"""Direction-vector refinement: search tree, pruning, completeness."""

from hypothesis import given, settings, strategies as st

from repro.core.affine import Affine
from repro.core.direction import (
    dependence_exists,
    lexicographic_class,
    refine_directions,
    reverse,
)
from repro.core.subscripts import LoopInfo, Reference, build_equations


def equations(f_dims, g_dims, loops):
    f = Reference("a", tuple(f_dims), loops, is_write=True)
    g = Reference("a", tuple(g_dims), loops)
    return build_equations(f, g)


class TestRefinement:
    def test_pure_forward(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i")], [Affine(-1, {"i": 1})], (i,))
        assert refine_directions(eqs) == {("<",)}

    def test_loop_independent(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i")], [Affine.var("i")], (i,))
        assert refine_directions(eqs) == {("=",)}

    def test_no_dependence(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i", 2)], [Affine(1, {"i": 2})], (i,))
        assert refine_directions(eqs) == set()
        assert not dependence_exists(eqs)

    def test_wavefront_vectors(self):
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 10)
        loops = (i, j)
        w = [Affine.var("i"), Affine.var("j")]
        assert refine_directions(
            equations(w, [Affine(-1, {"i": 1}), Affine.var("j")], loops),
            verify_exact=True,
        ) == {("<", "=")}
        assert refine_directions(
            equations(w, [Affine.var("i"), Affine(-1, {"j": 1})], loops),
            verify_exact=True,
        ) == {("=", "<")}
        assert refine_directions(
            equations(w, [Affine(-1, {"i": 1}), Affine(-1, {"j": 1})],
                      loops),
            verify_exact=True,
        ) == {("<", "<")}

    def test_exact_verification_prunes(self):
        # Banerjee alone admits (=) for write 2i+... a case where the
        # screens pass but no integer point exists: 3x - 3y = 1 under
        # any direction is impossible (GCD catches it), so instead use
        # 2x - 2y = 0 restricted to '<': integers exist only with x=y.
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i", 2)], [Affine.var("i", 2)], (i,))
        loose = refine_directions(eqs, verify_exact=False)
        tight = refine_directions(eqs, verify_exact=True)
        assert tight == {("=",)}
        assert tight <= loose

    def test_self_collision_symmetry(self):
        # A reference against itself: direction sets are symmetric.
        i = LoopInfo("i", 10)
        eqs = equations(
            [Affine(0, {"i": 1})], [Affine(2, {"i": 1})], (i,)
        )
        dirs = refine_directions(eqs, verify_exact=True)
        assert dirs == {(">",)}  # x = y + 2 means source later

    def test_counter_counts_tests(self):
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 10)
        eqs = equations(
            [Affine.var("i"), Affine.var("j")],
            [Affine(-1, {"i": 1}), Affine.var("j")],
            (i, j),
        )
        counter = [0]
        refine_directions(eqs, counter=counter)
        assert counter[0] >= 1

    def test_pruning_skips_subtrees(self):
        # With no dependence at the root, exactly one test runs.
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 10)
        eqs = equations(
            [Affine.var("i", 2), Affine.var("j")],
            [Affine(1, {"i": 2}), Affine.var("j")],
            (i, j),
        )
        counter = [0]
        assert refine_directions(eqs, counter=counter) == set()
        assert counter[0] == 1

    def test_custom_tester(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i")], [Affine.var("i")], (i,))
        always = refine_directions(eqs, tester=lambda d: True)
        assert always == {("<",), ("=",), (">",)}


class TestHelpers:
    def test_reverse(self):
        assert reverse(("<", "=", ">")) == (">", "=", "<")
        assert reverse(("*",)) == ("*",)

    def test_lexicographic_class(self):
        assert lexicographic_class(("=", "<")) == "forward"
        assert lexicographic_class((">", "<")) == "backward"
        assert lexicographic_class(("=", "=")) == "independent"
        assert lexicographic_class(()) == "independent"


@settings(max_examples=100, deadline=None)
@given(
    a0=st.integers(-5, 5), a1=st.integers(-4, 4),
    b0=st.integers(-5, 5), b1=st.integers(-4, 4),
    m=st.integers(2, 8),
)
def test_refinement_complete_vs_brute_force(a0, a1, b0, b1, m):
    """Every truly-occurring direction appears in the refined set."""
    i = LoopInfo("i", m)
    eqs = equations([Affine(a0, {"i": a1})], [Affine(b0, {"i": b1})], (i,))
    refined = refine_directions(eqs, verify_exact=True)
    true_dirs = set()
    for x in range(1, m + 1):
        for y in range(1, m + 1):
            if a0 + a1 * x == b0 + b1 * y:
                true_dirs.add(("<",) if x < y else ((">",) if x > y else ("=",)))
    assert true_dirs == refined
