"""GCD test (Theorem 1): soundness and classic cases."""

from hypothesis import given, settings, strategies as st

from repro.core.affine import Affine
from repro.core.gcd_test import equation_gcd, gcd_test
from repro.core.subscripts import LoopInfo, Reference, build_equations


def equations(f, g, loops):
    first = Reference("a", (f,), loops, is_write=True)
    second = Reference("a", (g,), loops)
    return build_equations(first, second)


class TestClassicCases:
    def test_even_odd_disjoint(self):
        i = LoopInfo("i", 100)
        eq = equations(Affine.var("i", 2), Affine(1, {"i": 2}), (i,))[0]
        assert not gcd_test(eq)  # 2x - 2y = 1 has no integer solution

    def test_same_stride_aligned(self):
        i = LoopInfo("i", 100)
        eq = equations(Affine.var("i", 2), Affine(4, {"i": 2}), (i,))[0]
        assert gcd_test(eq)  # 2x - 2y = 4: yes

    def test_stride_three_offsets(self):
        # The paper's §5 example 1: writes 3i, 3i-1, 3i-2 never collide.
        i = LoopInfo("i", 100)
        w1 = Affine.var("i", 3)
        w2 = Affine(-1, {"i": 3})
        w3 = Affine(-2, {"i": 3})
        assert not gcd_test(equations(w1, w2, (i,))[0])
        assert not gcd_test(equations(w1, w3, (i,))[0])
        assert not gcd_test(equations(w2, w3, (i,))[0])

    def test_constant_subscripts(self):
        i = LoopInfo("i", 100)
        eq = equations(Affine.constant(5), Affine.constant(5), (i,))[0]
        assert gcd_test(eq)
        eq = equations(Affine.constant(5), Affine.constant(6), (i,))[0]
        assert not gcd_test(eq)

    def test_direction_constraint_changes_gcd(self):
        # f = 2i, g = 2i: under '=', the term collapses to (a-b)x = 0,
        # so gcd = 0 and dependence iff constant == 0.
        i = LoopInfo("i", 10)
        eq = equations(Affine.var("i", 2), Affine.var("i", 2), (i,))[0]
        assert equation_gcd(eq, ("=",)) == 0
        assert gcd_test(eq, ("=",))
        assert equation_gcd(eq, ("*",)) == 2

    def test_gcd_ignores_loop_bounds(self):
        # GCD is bounds-blind: it reports "possible" even when the loop
        # is far too short for the solution to be in range.
        i = LoopInfo("i", 2)
        eq = equations(Affine.var("i"), Affine(1000, {"i": 1}), (i,))[0]
        assert gcd_test(eq)  # x - y = 1000 is integer-solvable...
        from repro.core.banerjee import banerjee_test
        assert not banerjee_test(eq)  # ...but not within bounds.


@settings(max_examples=300, deadline=None)
@given(
    a0=st.integers(-10, 10), a1=st.integers(-6, 6),
    b0=st.integers(-10, 10), b1=st.integers(-6, 6),
    m=st.integers(1, 8),
)
def test_gcd_sound_1d(a0, a1, b0, b1, m):
    """An in-region integer solution implies the GCD test passes."""
    i = LoopInfo("i", m)
    eq = equations(Affine(a0, {"i": a1}), Affine(b0, {"i": b1}), (i,))[0]
    exists = any(
        a0 + a1 * x == b0 + b1 * y
        for x in range(1, m + 1)
        for y in range(1, m + 1)
    )
    if exists:
        assert gcd_test(eq)


@settings(max_examples=200, deadline=None)
@given(
    a0=st.integers(-6, 6), a1=st.integers(-5, 5), a2=st.integers(-5, 5),
    b0=st.integers(-6, 6), b1=st.integers(-5, 5), b2=st.integers(-5, 5),
)
def test_gcd_decides_unbounded_solvability_2d(a0, a1, a2, b0, b1, b2):
    """Without bounds, GCD exactly decides the linear diophantine."""
    i = LoopInfo("i", None)
    j = LoopInfo("j", None)
    eq = equations(
        Affine(a0, {"i": a1, "j": a2}),
        Affine(b0, {"i": b1, "j": b2}),
        (i, j),
    )[0]
    # Brute-force a wide window as a stand-in for "any integer".
    window = range(-40, 41)
    exists = any(
        a0 + a1 * x1 + a2 * x2 == b0 + b1 * y1 + b2 * y2
        for x1 in window for x2 in window
        for y1 in [0] for y2 in [0]
    ) or any(
        a0 + a1 * x1 + a2 * x2 == b0 + b1 * y1 + b2 * y2
        for x1 in [0] for x2 in [0]
        for y1 in window for y2 in window
    ) or gcd_test(eq)  # fall back: don't fail on tiny windows
    if not gcd_test(eq):
        # GCD says impossible: verify nothing in the window works.
        assert not any(
            a0 + a1 * x1 + a2 * x2 == b0 + b1 * y1 + b2 * y2
            for x1 in range(-10, 11) for x2 in range(-10, 11)
            for y1 in range(-3, 4) for y2 in range(-3, 4)
        )
