"""Dependence-edge construction on real comprehensions (paper §5)."""

from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.dependence import (
    ANTI,
    FLOW,
    OUTPUT,
    anti_edges,
    flow_edges,
    output_edges,
)
from repro.lang.parser import parse_expr


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


def edge_set(edges):
    return {(e.src.index + 1, e.dst.index + 1, e.direction) for e in edges}


class TestFlowEdges:
    def test_section5_example1(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        edges = flow_edges(comp)
        assert edge_set(edges) == {
            (1, 2, ("<",)),
            (1, 3, ("=",)),
        }
        assert all(e.kind == FLOW for e in edges)

    def test_section5_example2(self):
        from repro.kernels import EXAMPLE2

        comp = comp_of(EXAMPLE2)
        assert edge_set(flow_edges(comp)) == {
            (2, 1, ("=", ">")),
            (1, 2, ("<", ">")),
            (2, 3, ("<",)),
        }

    def test_wavefront(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        edges = edge_set(flow_edges(comp))
        assert (3, 3, ("<", "=")) in edges
        assert (3, 3, ("=", "<")) in edges
        assert (3, 3, ("<", "<")) in edges
        # Border clauses feed the interior: loop-independent edges with
        # no shared loops.
        assert (1, 3, ()) in edges
        assert (2, 3, ()) in edges

    def test_no_reads_no_edges(self):
        comp = comp_of("array (1,5) [ i := i | i <- [1..5] ]")
        assert flow_edges(comp) == []

    def test_edge_level(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        for edge in flow_edges(comp):
            first_noneq = edge.level
            for symbol in edge.direction[:first_noneq]:
                assert symbol == "="

    def test_pessimistic_star_edge_for_nonaffine_read(self):
        src = """
        letrec a = array (1,10)
          [* [ i := a!(i * i) ] | i <- [1..10] *]
        in a
        """
        comp = comp_of(src)
        edges = flow_edges(comp)
        assert any("*" in e.direction for e in edges)


class TestOutputEdges:
    def test_no_collisions_in_stride3(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        assert output_edges(comp) == []

    def test_certain_collision_detected(self):
        comp = comp_of("array (1,10) [* [ 5 := i ] | i <- [1..3] *]")
        edges = output_edges(comp)
        assert len(edges) == 1
        assert edges[0].kind == OUTPUT

    def test_cross_clause_collision(self):
        src = """
        array (1,20)
          ([ i := 0 | i <- [1..10] ] ++
           [ i + 5 := 1 | i <- [1..10] ])
        """
        comp = comp_of(src)
        assert len(output_edges(comp)) == 1

    def test_self_collision_not_duplicated(self):
        comp = comp_of(
            "array (1,30) [* [ mod0 := i ] | i <- [1..3] *]"
            .replace("mod0", "5")
        )
        assert len(output_edges(comp)) == 1


class TestAntiEdges:
    def test_swap_cycle(self):
        from repro.kernels import SWAP

        comp = comp_of(SWAP, {"m": 6, "n": 8, "i": 2, "k": 5})
        edges = anti_edges(comp, "a")
        assert edge_set(edges) == {(1, 2, ("=",)), (2, 1, ("=",))}
        assert all(e.kind == ANTI and e.breakable for e in edges)

    def test_jacobi_four_self_edges(self):
        from repro.kernels import JACOBI

        comp = comp_of(JACOBI, {"m": 10})
        assert edge_set(anti_edges(comp, "u")) == {
            (1, 1, ("<", "=")),
            (1, 1, (">", "=")),
            (1, 1, ("=", "<")),
            (1, 1, ("=", ">")),
        }

    def test_gauss_seidel_matches_paper(self):
        # Paper §9: "true dependence edges (<,=) and (=,<) and
        # antidependence edges (<,=) and (=,<)".
        from repro.kernels import GAUSS_SEIDEL

        comp = comp_of(GAUSS_SEIDEL, {"m": 10})
        assert edge_set(flow_edges(comp)) == {
            (1, 1, ("<", "=")), (1, 1, ("=", "<")),
        }
        assert edge_set(anti_edges(comp, "u")) == {
            (1, 1, ("<", "=")), (1, 1, ("=", "<")),
        }

    def test_same_instance_same_clause_anti_dropped(self):
        # Reading the cell you are about to overwrite in the same
        # instance is always safe: the value is computed first.
        src = "array (1,10) [* i := a!i + 1 | i <- [1..10] *]"
        comp = comp_of(src)
        assert anti_edges(comp, "a") == []

    def test_scale_row_no_anti(self):
        from repro.kernels import SCALE_ROW

        comp = comp_of(SCALE_ROW, {"m": 5, "n": 6, "i": 3, "s": 2})
        assert anti_edges(comp, "a") == []
