"""Dependence-edge construction on real comprehensions (paper §5)."""

from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.dependence import (
    ANTI,
    FLOW,
    OUTPUT,
    anti_edges,
    flow_edges,
    output_edges,
)
from repro.lang.parser import parse_expr


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


def edge_set(edges):
    return {(e.src.index + 1, e.dst.index + 1, e.direction) for e in edges}


class TestFlowEdges:
    def test_section5_example1(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        edges = flow_edges(comp)
        assert edge_set(edges) == {
            (1, 2, ("<",)),
            (1, 3, ("=",)),
        }
        assert all(e.kind == FLOW for e in edges)

    def test_section5_example2(self):
        from repro.kernels import EXAMPLE2

        comp = comp_of(EXAMPLE2)
        assert edge_set(flow_edges(comp)) == {
            (2, 1, ("=", ">")),
            (1, 2, ("<", ">")),
            (2, 3, ("<",)),
        }

    def test_wavefront(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        edges = edge_set(flow_edges(comp))
        assert (3, 3, ("<", "=")) in edges
        assert (3, 3, ("=", "<")) in edges
        assert (3, 3, ("<", "<")) in edges
        # Border clauses feed the interior: loop-independent edges with
        # no shared loops.
        assert (1, 3, ()) in edges
        assert (2, 3, ()) in edges

    def test_no_reads_no_edges(self):
        comp = comp_of("array (1,5) [ i := i | i <- [1..5] ]")
        assert flow_edges(comp) == []

    def test_edge_level(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        for edge in flow_edges(comp):
            first_noneq = edge.level
            for symbol in edge.direction[:first_noneq]:
                assert symbol == "="

    def test_pessimistic_star_edge_for_nonaffine_read(self):
        src = """
        letrec a = array (1,10)
          [* [ i := a!(i * i) ] | i <- [1..10] *]
        in a
        """
        comp = comp_of(src)
        edges = flow_edges(comp)
        assert any("*" in e.direction for e in edges)


class TestOutputEdges:
    def test_no_collisions_in_stride3(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        assert output_edges(comp) == []

    def test_certain_collision_detected(self):
        comp = comp_of("array (1,10) [* [ 5 := i ] | i <- [1..3] *]")
        edges = output_edges(comp)
        assert len(edges) == 1
        assert edges[0].kind == OUTPUT

    def test_cross_clause_collision(self):
        src = """
        array (1,20)
          ([ i := 0 | i <- [1..10] ] ++
           [ i + 5 := 1 | i <- [1..10] ])
        """
        comp = comp_of(src)
        assert len(output_edges(comp)) == 1

    def test_self_collision_not_duplicated(self):
        comp = comp_of(
            "array (1,30) [* [ mod0 := i ] | i <- [1..3] *]"
            .replace("mod0", "5")
        )
        assert len(output_edges(comp)) == 1


class TestAntiEdges:
    def test_swap_cycle(self):
        from repro.kernels import SWAP

        comp = comp_of(SWAP, {"m": 6, "n": 8, "i": 2, "k": 5})
        edges = anti_edges(comp, "a")
        assert edge_set(edges) == {(1, 2, ("=",)), (2, 1, ("=",))}
        assert all(e.kind == ANTI and e.breakable for e in edges)

    def test_jacobi_four_self_edges(self):
        from repro.kernels import JACOBI

        comp = comp_of(JACOBI, {"m": 10})
        assert edge_set(anti_edges(comp, "u")) == {
            (1, 1, ("<", "=")),
            (1, 1, (">", "=")),
            (1, 1, ("=", "<")),
            (1, 1, ("=", ">")),
        }

    def test_gauss_seidel_matches_paper(self):
        # Paper §9: "true dependence edges (<,=) and (=,<) and
        # antidependence edges (<,=) and (=,<)".
        from repro.kernels import GAUSS_SEIDEL

        comp = comp_of(GAUSS_SEIDEL, {"m": 10})
        assert edge_set(flow_edges(comp)) == {
            (1, 1, ("<", "=")), (1, 1, ("=", "<")),
        }
        assert edge_set(anti_edges(comp, "u")) == {
            (1, 1, ("<", "=")), (1, 1, ("=", "<")),
        }

    def test_same_instance_same_clause_anti_dropped(self):
        # Reading the cell you are about to overwrite in the same
        # instance is always safe: the value is computed first.
        src = "array (1,10) [* i := a!i + 1 | i <- [1..10] *]"
        comp = comp_of(src)
        assert anti_edges(comp, "a") == []

    def test_scale_row_no_anti(self):
        from repro.kernels import SCALE_ROW

        comp = comp_of(SCALE_ROW, {"m": 5, "n": 6, "i": 3, "s": 2})
        assert anti_edges(comp, "a") == []


class TestDependenceMemo:
    def refs(self, count=100, offset=-1, var="i.0"):
        from repro.core.affine import Affine
        from repro.core.subscripts import LoopInfo, Reference

        loop = LoopInfo(var, count)
        write = Reference("a", (Affine(0, {var: 1}),), (loop,),
                          is_write=True)
        read = Reference("a", (Affine(offset, {var: 1}),), (loop,))
        return write, read

    def test_repeated_pair_returns_the_memoized_verdict(self):
        from repro.core.dependence import (
            _directions_between,
            dependence_memo,
        )

        write, read = self.refs()
        with dependence_memo() as store:
            first = _directions_between(write, read, True)
            second = _directions_between(write, read, True)
            assert second is first  # the cached frozenset, not a copy
            assert len(store) == 1
        assert first == {("<",)}

    def test_alpha_renamed_system_hits_the_same_entry(self):
        # Canonicalization numbers loops positionally: a structurally
        # identical pair over a different loop variable collides.
        from repro.core.dependence import (
            _directions_between,
            dependence_memo,
        )

        with dependence_memo() as store:
            _directions_between(*self.refs(var="i.0"), True)
            _directions_between(*self.refs(var="j.0"), True)
            assert len(store) == 1

    def test_different_counts_and_flags_do_not_collide(self):
        from repro.core.dependence import (
            _directions_between,
            dependence_memo,
        )

        with dependence_memo() as store:
            _directions_between(*self.refs(count=100), True)
            _directions_between(*self.refs(count=3), True)
            _directions_between(*self.refs(count=100), False)
            assert len(store) == 3

    def test_no_caching_outside_a_scope(self):
        from repro.core import dependence

        write, read = self.refs()
        assert getattr(dependence._MEMO, "store", None) is None
        out = dependence._directions_between(write, read, True)
        assert out == {("<",)}
        assert getattr(dependence._MEMO, "store", None) is None

    def test_scopes_nest_and_share_one_store(self):
        from repro.core.dependence import dependence_memo

        with dependence_memo() as outer:
            with dependence_memo() as inner:
                assert inner is outer

    def test_verdicts_match_the_unmemoized_search(self):
        # The memo must be invisible: every kernel's edge sets agree
        # with a fresh (scope-free) computation.
        from repro.core.dependence import dependence_memo
        from repro.kernels import GAUSS_SEIDEL, STRIDE3_SCHEMATIC

        for src, params in ((STRIDE3_SCHEMATIC, None),
                            (GAUSS_SEIDEL, {"m": 10})):
            comp = comp_of(src, params)
            bare = edge_set(flow_edges(comp))
            with dependence_memo():
                memoized = edge_set(flow_edges(comp))
                again = edge_set(flow_edges(comp))
            assert memoized == bare
            assert again == bare
