"""Accumulated-array compilation (the paper's §3/§7 further-work item)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompileError, compile_accum_array, evaluate
from repro.core.accum import classify_combiner, source_schedule
from repro.lang.parser import parse_expr


def oracle_list(src, bindings=None):
    a = evaluate(src, bindings=bindings, deep=False)
    return a.to_list()


class TestClassifier:
    @pytest.mark.parametrize("src,expected", [
        ("\\a b -> a + b", ("commutative", "+")),
        ("\\a b -> b + a", ("commutative", "+")),
        ("\\x y -> x * y", ("commutative", "*")),
        ("min", ("commutative", "min")),
        ("max", ("commutative", "max")),
        ("\\a b -> min a b", ("commutative", "min")),
        ("\\a b -> max b a", ("commutative", "max")),
    ])
    def test_commutative_shapes(self, src, expected):
        assert classify_combiner(parse_expr(src)) == expected

    @pytest.mark.parametrize("src", [
        "\\a b -> a - b",
        "\\a b -> a * 10 + b",
        "\\a b -> a + a",       # ignores one argument: not the pattern
        "\\a b -> a / b",
        "f",
    ])
    def test_ordered_shapes(self, src):
        kind, _ = classify_combiner(parse_expr(src))
        assert kind == "ordered"


class TestCommutativeCompilation:
    def test_histogram(self):
        src = """
        letrec h = accumArray (\\a b -> a + b) 0 (0,9)
          [ mod (k * 7) 10 := 1 | k <- [1..100] ]
        in h
        """
        compiled = compile_accum_array(src)
        assert compiled.report.strategy == "accumulate"
        assert compiled({}).to_list() == oracle_list(src)

    def test_default_value_fills(self):
        src = "letrec a = accumArray (\\x y -> x + y) 7 (1,5) [ 3 := 1 ] in a"
        compiled = compile_accum_array(src)
        assert compiled({}).to_list() == [7, 7, 8, 7, 7]

    def test_max_accumulation(self):
        src = """
        letrec m = accumArray max 0 (0,3)
          [ mod k 4 := k | k <- [1..20] ]
        in m
        """
        compiled = compile_accum_array(src)
        assert compiled({}).to_list() == oracle_list(src)

    def test_two_dimensional(self):
        src = """
        letrec g = accumArray (\\a b -> a + b) 0 ((0,0),(1,2))
          [ (mod k 2, mod k 3) := k | k <- [1..12] ]
        in g
        """
        compiled = compile_accum_array(src)
        assert compiled({}).to_list() == oracle_list(src)

    def test_symbolic_size(self):
        src = """
        letrec h = accumArray (\\a b -> a + b) 0 (1,n)
          [ i := i | i <- [1..n] ]
        in h
        """
        compiled = compile_accum_array(src)
        assert compiled({"n": 6}).to_list() == [1, 2, 3, 4, 5, 6]


class TestOrderedCompilation:
    def test_fold_order_preserved(self):
        src = """
        letrec d = accumArray (\\a b -> a * 10 + b) 0 (1,3)
          [* [ mod i 3 + 1 := i ] | i <- [1..9] *]
        in d
        """
        compiled = compile_accum_array(src)
        assert any("source order" in n for n in compiled.report.notes)
        assert compiled({}).to_list() == oracle_list(src)

    def test_subtraction_combiner(self):
        src = """
        letrec d = accumArray (\\a b -> a - b) 100 (1,2)
          [ 1 := k | k <- [1..4] ]
        in d
        """
        compiled = compile_accum_array(src)
        assert compiled({}).to_list() == [100 - 1 - 2 - 3 - 4, 100]

    def test_collision_free_ordered_still_reorderable(self):
        # Without collisions the combiner's order never matters.
        src = """
        letrec d = accumArray (\\a b -> a - b) 0 (1,5)
          [ i := i | i <- [1..5] ]
        in d
        """
        compiled = compile_accum_array(src)
        assert any("reorderable" in n for n in compiled.report.notes)
        assert compiled({}).to_list() == [-1, -2, -3, -4, -5]

    def test_env_combiner(self):
        src = """
        letrec e = accumArray g 1 (1,2) [ 1 := k | k <- [2..4] ]
        in e
        """
        compiled = compile_accum_array(src)
        out = compiled({"g": lambda a, b: a * b})
        assert out.to_list() == [24, 1]

    def test_rejects_non_function(self):
        with pytest.raises(CompileError):
            compile_accum_array(
                "letrec e = accumArray (1 + 2) 0 (1,1) [ 1 := 1 ] in e"
            )

    def test_rejects_non_accum(self):
        with pytest.raises(CompileError):
            compile_accum_array("letrec a = array (1,1) [ 1 := 1 ] in a")


class TestSourceSchedule:
    def test_replays_source_order(self):
        from repro.comprehension.build import (
            build_array_comp,
            find_array_comp,
        )
        from repro.kernels import WAVEFRONT

        name, b, p = find_array_comp(parse_expr(WAVEFRONT))
        comp = build_array_comp(name, b, p, {"n": 5})
        schedule = source_schedule(comp)
        assert schedule.ok
        assert schedule.clause_order() == [0, 1, 2]
        assert all(
            d == "forward"
            for dirs in schedule.loop_directions().values()
            for d in dirs
        )


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(1, 8),
    targets=st.lists(st.integers(1, 4), min_size=1, max_size=12),
    scale=st.integers(1, 9),
)
def test_ordered_accumulation_matches_foldl(n, targets, scale):
    """Random colliding updates with a non-commutative combiner must
    reproduce the exact foldl order."""
    pairs = ", ".join(f"{t} := {scale * (p + 1)}"
                      for p, t in enumerate(targets))
    src = (
        f"letrec d = accumArray (\\a b -> a * 100 + b) 0 (1,4) "
        f"[{pairs}] in d"
    )
    compiled = compile_accum_array(src)
    assert compiled({}).to_list() == oracle_list(src)
