"""Digraph utilities: SCC, topological sort, quotient, reachability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import Digraph


def graph_of(edges, vertices=()):
    g = Digraph(vertices)
    for src, dst in edges:
        g.add_edge(src, dst)
    return g


class TestSCC:
    def test_acyclic_singletons(self):
        g = graph_of([("a", "b"), ("b", "c")])
        assert sorted(map(sorted, g.sccs())) == [["a"], ["b"], ["c"]]

    def test_simple_cycle(self):
        g = graph_of([("a", "b"), ("b", "a")])
        assert sorted(map(sorted, g.sccs())) == [["a", "b"]]

    def test_two_components(self):
        g = graph_of([("a", "b"), ("b", "a"), ("b", "c"),
                      ("c", "d"), ("d", "c")])
        comps = sorted(map(sorted, g.sccs()))
        assert comps == [["a", "b"], ["c", "d"]]

    def test_self_loop(self):
        g = graph_of([("a", "a")])
        assert g.sccs() == [["a"]]

    def test_reverse_topological_order_of_condensation(self):
        g = graph_of([("a", "b"), ("b", "c")])
        order = [c[0] for c in g.sccs()]
        assert order.index("c") < order.index("a")

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        g = graph_of([(k, k + 1) for k in range(n)])
        assert len(g.sccs()) == n + 1

    def test_isolated_vertices(self):
        g = Digraph(["x", "y"])
        assert sorted(map(sorted, g.sccs())) == [["x"], ["y"]]


class TestTopological:
    def test_order_respects_edges(self):
        g = graph_of([("a", "c"), ("b", "c"), ("c", "d")])
        order = g.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_raises(self):
        g = graph_of([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            g.topological_order()
        assert not g.is_acyclic()

    def test_deterministic_insertion_order(self):
        g = Digraph(["p", "q", "r"])
        assert g.topological_order() == ["p", "q", "r"]


class TestQuotient:
    def test_condensation_is_dag(self):
        g = graph_of([("a", "b"), ("b", "a"), ("b", "c"),
                      ("c", "d"), ("d", "c"), ("a", "d")])
        q, scc_of = g.quotient()
        assert q.is_acyclic()
        assert scc_of["a"] == scc_of["b"]
        assert scc_of["c"] == scc_of["d"]
        assert scc_of["a"] != scc_of["c"]

    def test_intra_scc_edges_dropped(self):
        g = graph_of([("a", "b"), ("b", "a")])
        q, _ = g.quotient()
        assert list(q.edges()) == []

    def test_labels_preserved(self):
        g = Digraph()
        g.add_edge("a", "b", "lab")
        q, scc_of = g.quotient()
        labels = [label for _, _, label in q.edges()]
        assert labels == ["lab"]


class TestReachability:
    def test_reachable(self):
        g = graph_of([("a", "b"), ("b", "c"), ("d", "a")])
        assert g.reachable_from(["a"]) == {"a", "b", "c"}
        assert g.reachable_from(["d"]) == {"d", "a", "b", "c"}
        assert g.reachable_from([]) == set()


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(1, 8),
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
    ),
)
def test_scc_partition_property(n, edges):
    g = Digraph(range(n))
    for src, dst in edges:
        if src < n and dst < n:
            g.add_edge(src, dst)
    comps = g.sccs()
    # Partition: every vertex in exactly one component.
    flat = [v for comp in comps for v in comp]
    assert sorted(flat) == sorted(g.vertices)
    # Mutual reachability within components.
    for comp in comps:
        for u in comp:
            reach = g.reachable_from([u])
            assert all(v in reach for v in comp)
