"""Write-collision and empties analysis (paper §4, §7)."""

from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.collisions import (
    CERTAIN,
    NONE,
    POSSIBLE,
    analyze_collisions,
    analyze_empties,
)
from repro.lang.parser import parse_expr


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


class TestCollisions:
    def test_injective_writes_proved_clean(self):
        comp = comp_of("array (1,10) [ i := 0 | i <- [1..10] ]")
        assert analyze_collisions(comp).status == NONE

    def test_stride3_clean(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        report = analyze_collisions(comp)
        assert report.status == NONE
        assert not report.checks_needed

    def test_wavefront_clean(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        assert analyze_collisions(comp).status == NONE

    def test_certain_self_collision(self):
        comp = comp_of("array (1,10) [* [ 5 := i ] | i <- [1..3] *]")
        report = analyze_collisions(comp)
        assert report.status == CERTAIN
        assert report.findings[0].witness is not None

    def test_certain_cross_clause_collision(self):
        src = """
        array (1,15)
          ([ i := 0 | i <- [1..10] ] ++
           [ i + 4 := 1 | i <- [1..10] ])
        """
        report = analyze_collisions(comp_of(src))
        assert report.status == CERTAIN

    def test_guard_downgrades_certain_to_possible(self):
        # The guard may exclude the witness at run time: analysis
        # ignores guards, so it must report POSSIBLE, not CERTAIN.
        src = """
        array (1,10)
          [* [ (if i < 3 then i else i - 2) := i ] | i <- [1..4] *]
        """
        comp = comp_of(src)
        # A non-affine (conditional) subscript: pessimistic POSSIBLE.
        report = analyze_collisions(comp)
        assert report.status == POSSIBLE

    def test_guarded_clause_possible(self):
        src = """
        array (1,10)
          ([ i := 0 | i <- [1..5], i > 2 ] ++
           [ i := 1 | i <- [1..5], i <= 2 ])
        """
        report = analyze_collisions(comp_of(src))
        assert report.status == POSSIBLE  # guards hide the disjointness

    def test_symbolic_bounds_possible(self):
        # Unknown trip counts: cannot run the exact test.
        src = "array (1,100) ([ i := 0 | i <- [1..n] ] ++ [ i + n := 1 | i <- [1..n] ])"
        report = analyze_collisions(comp_of(src))
        assert report.status == POSSIBLE


class TestEmpties:
    def test_exact_cover_proved(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 10})
        report = analyze_empties(comp)
        assert report.status == NONE
        assert report.total_pairs == report.array_size == 100

    def test_stride3_proved(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        comp = comp_of(STRIDE3_SCHEMATIC)
        report = analyze_empties(comp)
        assert report.status == NONE
        assert report.total_pairs == 300

    def test_undercount_certain(self):
        comp = comp_of("array (1,10) [ i := 0 | i <- [1..9] ]")
        report = analyze_empties(comp)
        assert report.status == CERTAIN
        assert report.total_pairs == 9 and report.array_size == 10

    def test_out_of_bounds_write_detected(self):
        comp = comp_of("array (1,10) [ i + 5 := 0 | i <- [1..10] ]")
        report = analyze_empties(comp)
        assert report.status != NONE
        assert any("out of bounds" in r for r in report.reasons)

    def test_guards_block_counting(self):
        comp = comp_of(
            "array (1,10) [ i := 0 | i <- [1..10], i > 0 ]"
        )
        report = analyze_empties(comp)
        assert report.status == POSSIBLE

    def test_symbolic_size_possible(self):
        comp = comp_of("array (1,n) [ i := 0 | i <- [1..n] ]")
        report = analyze_empties(comp)
        assert report.status == POSSIBLE

    def test_collisions_make_empties_possible(self):
        # Right pair count but colliding writes: some element empty.
        comp = comp_of("array (1,3) [* [ mod i 2 + 1 := i ] | i <- [1..3] *]")
        report = analyze_empties(comp)
        assert report.status != NONE

    def test_reuses_collision_report(self):
        from repro.kernels import WAVEFRONT

        comp = comp_of(WAVEFRONT, {"n": 6})
        collision = analyze_collisions(comp)
        report = analyze_empties(comp, collision)
        assert report.status == NONE
