"""Static scheduling (paper §8): directions, passes, fallbacks."""

from repro.comprehension.build import build_array_comp, find_array_comp
from repro.core.dependence import anti_edges, flow_edges
from repro.core.schedule import (
    ScheduledClause,
    ScheduledLoop,
    schedule_comp,
)
from repro.lang.parser import parse_expr


def comp_of(src, params=None):
    name, bounds_ast, pairs_ast = find_array_comp(parse_expr(src))
    return build_array_comp(name, bounds_ast, pairs_ast, params)


def scheduled(src, params=None, anti_old=None, split=False):
    comp = comp_of(src, params)
    edges = flow_edges(comp)
    if anti_old:
        edges = edges + anti_edges(comp, anti_old)
    return schedule_comp(comp, edges, allow_node_splitting=split)


class TestSingleLevelLoops:
    def test_example1_forward_with_order(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        s = scheduled(STRIDE3_SCHEMATIC)
        assert s.ok
        assert s.loop_directions() == {"i": ["forward"]}
        order = s.clause_order()
        assert order.index(0) < order.index(2)  # clause 1 before 3

    def test_backward_only_dependence(self):
        src = """
        letrec a = array (1,10)
          [* [ i := (if i < 10 then a!(i+1) else 0) + 1 ] | i <- [1..10] *]
        in a
        """
        s = scheduled(src)
        assert s.ok
        assert s.loop_directions() == {"i": ["backward"]}

    def test_no_dependences_either_direction(self):
        s = scheduled("letrec a = array (1,5) [ i := i | i <- [1..5] ] in a")
        assert s.ok
        assert s.loop_directions() == {"i": ["either"]}

    def test_abc_two_passes(self):
        from repro.kernels import ABC_ACYCLIC

        s = scheduled(ABC_ACYCLIC)
        assert s.ok
        directions = s.loop_directions()["i"]
        assert len(directions) == 2  # three clauses collapse to 2 passes
        # First pass runs A and B forward; second pass runs C.
        first = s.items[0]
        assert isinstance(first, ScheduledLoop)
        members = [
            item.clause.index for item in first.body
            if isinstance(item, ScheduledClause)
        ]
        assert members == [0, 1]
        second = s.items[1]
        assert [item.clause.index for item in second.body] == [2]

    def test_cyclic_both_directions_fails(self):
        from repro.kernels import CYCLIC_FALLBACK

        s = scheduled(CYCLIC_FALLBACK)
        assert not s.ok
        assert any("cycle" in f for f in s.failures)

    def test_within_instance_order_cycle_fails(self):
        # Two clauses feeding each other in the same instance.
        src = """
        letrec a = array (1,20)
          [* [ 2*i := a!(2*i+1) + 1,
               2*i+1 := a!(2*i) + 1 ] | i <- [1..10] *]
        in a
        """
        s = scheduled(src)
        assert not s.ok

    def test_element_self_dependence_fails(self):
        src = """
        letrec a = array (1,5)
          [* [ i := a!i + 1 ] | i <- [1..5] *]
        in a
        """
        s = scheduled(src)
        assert not s.ok
        assert any("itself" in f for f in s.failures)


class TestNestedLoops:
    def test_example2_schedule(self):
        from repro.kernels import EXAMPLE2

        s = scheduled(EXAMPLE2)
        assert s.ok
        directions = s.loop_directions()
        assert directions["i"] == ["forward"]
        assert directions["j"] == ["backward"]

    def test_wavefront_forward_forward(self):
        from repro.kernels import WAVEFRONT

        s = scheduled(WAVEFRONT, {"n": 8})
        assert s.ok
        directions = s.loop_directions()
        assert "forward" in directions["i"]
        assert "forward" in directions["j"]
        # Borders are scheduled before the interior nest.
        order = s.clause_order()
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(2)

    def test_inner_carried_edge_does_not_constrain_outer(self):
        # (=,<) edge: inner loop forward, outer free.
        src = """
        letrec a = array ((1,1),(8,8))
          [* (i,j) := (if j > 1 then a!(i,j-1) else 0) + 1
           | i <- [1..8], j <- [1..8] *]
        in a
        """
        s = scheduled(src, {"n": 8})
        assert s.ok
        directions = s.loop_directions()
        assert directions["i"] == ["either"]
        assert directions["j"] == ["forward"]

    def test_outer_carried_edge_does_not_constrain_inner(self):
        src = """
        letrec a = array ((1,1),(8,8))
          [* (i,j) := (if i > 1 then a!(i-1,j) else 0) + 1
           | i <- [1..8], j <- [1..8] *]
        in a
        """
        s = scheduled(src)
        directions = s.loop_directions()
        assert directions["i"] == ["forward"]
        assert directions["j"] == ["either"]

    def test_backward_inner_loop_from_source_order(self):
        # Generator written backward: dependences computed in
        # normalized space; the schedule direction composes with the
        # written order.
        src = """
        letrec a = array (1,10)
          [* [ i := (if i < 10 then a!(i+1) else 0) + 1 ]
           | i <- [10,9..1] *]
        in a
        """
        s = scheduled(src)
        assert s.ok
        # Source order already runs 10..1; dependence (<) in
        # normalized space means "earlier in written order", so the
        # loop runs forward over the written (descending) sequence.
        assert s.loop_directions() == {"i": ["forward"]}


class TestNodeSplitting:
    def test_swap_requires_splitting(self):
        from repro.kernels import SWAP

        params = {"m": 6, "n": 8, "i": 2, "k": 5}
        comp = comp_of(SWAP, params)
        edges = anti_edges(comp, "a")
        strict = schedule_comp(comp, edges, allow_node_splitting=False)
        assert not strict.ok
        relaxed = schedule_comp(comp, edges, allow_node_splitting=True)
        assert relaxed.ok
        assert len(relaxed.split_edges) == 2

    def test_jacobi_split(self):
        from repro.kernels import JACOBI

        comp = comp_of(JACOBI, {"m": 10})
        edges = anti_edges(comp, "u")
        s = schedule_comp(comp, edges, allow_node_splitting=True)
        assert s.ok
        assert s.split_edges  # anti self-cycles broken by temporaries

    def test_sor_needs_no_splitting(self):
        from repro.kernels import GAUSS_SEIDEL

        comp = comp_of(GAUSS_SEIDEL, {"m": 10})
        edges = flow_edges(comp) + anti_edges(comp, "u")
        s = schedule_comp(comp, edges, allow_node_splitting=True)
        assert s.ok
        assert s.split_edges == []
        assert s.loop_directions() == {"i": ["forward"], "j": ["forward"]}

    def test_flow_cycle_not_breakable(self):
        # Cycles of *flow* edges cannot be node-split.
        from repro.kernels import CYCLIC_FALLBACK

        comp = comp_of(CYCLIC_FALLBACK)
        s = schedule_comp(comp, flow_edges(comp), allow_node_splitting=True)
        assert not s.ok


class TestScheduleIntrospection:
    def test_clause_directions(self):
        from repro.kernels import WAVEFRONT

        s = scheduled(WAVEFRONT, {"n": 8})
        directions = s.clause_directions()
        assert directions[2] == ("forward", "forward")
        assert len(directions[0]) == 1

    def test_clause_positions(self):
        from repro.kernels import STRIDE3_SCHEMATIC

        s = scheduled(STRIDE3_SCHEMATIC)
        positions = s.clause_positions()
        assert positions[0] < positions[2]

    def test_schedule_repr_roundtrip(self):
        from repro.kernels import WAVEFRONT
        from repro.report import render_schedule

        s = scheduled(WAVEFRONT, {"n": 8})
        text = render_schedule(s)
        assert "loop" in text and "clause" in text
