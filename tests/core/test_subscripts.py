"""Reference pairs and dependence-equation construction."""

import pytest

from repro.core.affine import Affine
from repro.core.subscripts import (
    DependenceEquation,
    LoopInfo,
    Reference,
    Term,
    build_equations,
    shared_loops,
)


class TestReference:
    def test_construction(self):
        i = LoopInfo("i", 10)
        r = Reference("a", (Affine.var("i"),), (i,), is_write=True)
        assert r.array == "a"
        assert r.is_write

    def test_subscript_vars_must_be_loop_vars(self):
        i = LoopInfo("i", 10)
        with pytest.raises(ValueError):
            Reference("a", (Affine.var("k"),), (i,))

    def test_constant_subscript_ok(self):
        r = Reference("a", (Affine.constant(5),), ())
        assert r.subscript[0].is_constant()


class TestSharedLoops:
    def test_identity_matters(self):
        i1 = LoopInfo("i", 10)
        i2 = LoopInfo("i", 10)  # same name, different loop
        r1 = Reference("a", (Affine.var("i"),), (i1,))
        r2 = Reference("a", (Affine.var("i"),), (i2,))
        assert shared_loops(r1, r2) == ()

    def test_common_prefix(self):
        i = LoopInfo("i", 10)
        j1 = LoopInfo("j", 5)
        j2 = LoopInfo("j", 5)
        r1 = Reference("a", (Affine.var("i"),), (i, j1))
        r2 = Reference("a", (Affine.var("i"),), (i, j2))
        assert shared_loops(r1, r2) == (i,)

    def test_full_share(self):
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 5)
        r1 = Reference("a", (Affine.var("j"),), (i, j))
        r2 = Reference("a", (Affine.var("i"),), (i, j))
        assert shared_loops(r1, r2) == (i, j)


class TestBuildEquations:
    def test_constant_and_terms(self):
        i = LoopInfo("i", 10)
        f = Reference("a", (Affine(2, {"i": 3}),), (i,), is_write=True)
        g = Reference("a", (Affine(5, {"i": 1}),), (i,))
        eq = build_equations(f, g)[0]
        assert eq.constant == 3  # b0 - a0 = 5 - 2
        assert eq.depth == 1
        term = eq.shared_terms[0]
        assert (term.a, term.b) == (3, 1)
        assert term.count == 10

    def test_per_dimension(self):
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 10)
        f = Reference("a", (Affine.var("i"), Affine.var("j")), (i, j),
                      is_write=True)
        g = Reference(
            "a", (Affine(-1, {"i": 1}), Affine(4, {"j": 1})), (i, j)
        )
        eqs = build_equations(f, g)
        assert len(eqs) == 2
        assert eqs[0].constant == -1
        assert eqs[1].constant == 4

    def test_unshared_terms_one_sided(self):
        i = LoopInfo("i", 10)
        j = LoopInfo("j", 4)
        k = LoopInfo("k", 7)
        f = Reference("a", (Affine.var("i") + Affine.var("j"),), (i, j),
                      is_write=True)
        g = Reference("a", (Affine.var("i") + Affine.var("k"),), (i, k))
        eq = build_equations(f, g)[0]
        assert eq.depth == 1  # only i is shared
        one_sided = [t for t in eq.terms if not t.shared]
        assert len(one_sided) == 2
        by_var = {t.loop.var: t for t in one_sided}
        assert by_var["j"].a == 1 and by_var["j"].b is None
        assert by_var["k"].b == 1 and by_var["k"].a is None

    def test_zero_coefficient_shared_term_kept(self):
        i = LoopInfo("i", 10)
        f = Reference("a", (Affine.var("i"),), (i,), is_write=True)
        g = Reference("a", (Affine.constant(3),), (i,))
        eq = build_equations(f, g)[0]
        assert eq.shared_terms[0].b == 0

    def test_different_arrays_rejected(self):
        i = LoopInfo("i", 10)
        f = Reference("a", (Affine.var("i"),), (i,))
        g = Reference("b", (Affine.var("i"),), (i,))
        with pytest.raises(ValueError):
            build_equations(f, g)

    def test_rank_mismatch_rejected(self):
        i = LoopInfo("i", 10)
        f = Reference("a", (Affine.var("i"),), (i,))
        g = Reference("a", (Affine.var("i"), Affine.var("i")), (i,))
        with pytest.raises(ValueError):
            build_equations(f, g)

    def test_term_repr_and_shared_flag(self):
        i = LoopInfo("i", 3)
        t = Term(i, 1, None)
        assert not t.shared
        assert Term(i, 1, 2).shared
        assert isinstance(repr(DependenceEquation(0, [t])), str)
