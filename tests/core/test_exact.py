"""Exact bounded-integer-solution test: completeness vs brute force."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affine import Affine
from repro.core.exact import exact_test
from repro.core.subscripts import LoopInfo, Reference, build_equations


def equations(f_dims, g_dims, loops):
    f = Reference("a", tuple(f_dims), loops, is_write=True)
    g = Reference("a", tuple(g_dims), loops)
    return build_equations(f, g)


class TestWitnesses:
    def test_simple_witness(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i")], [Affine(-1, {"i": 1})], (i,))
        witness = exact_test(eqs)
        assert witness is not None
        assert witness["x:i"] == witness["y:i"] - 1

    def test_no_solution(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i", 2)], [Affine(1, {"i": 2})], (i,))
        assert exact_test(eqs) is None

    def test_bounded_out_of_reach(self):
        i = LoopInfo("i", 5)
        eqs = equations([Affine.var("i")], [Affine(100, {"i": 1})], (i,))
        assert exact_test(eqs) is None

    def test_direction_constrained(self):
        i = LoopInfo("i", 10)
        eqs = equations([Affine.var("i")], [Affine(-2, {"i": 1})], (i,))
        assert exact_test(eqs, ("<",)) is not None
        assert exact_test(eqs, ("=",)) is None
        assert exact_test(eqs, (">",)) is None

    def test_multidimensional_joint(self):
        # Dimension-wise each equation is solvable, but not jointly:
        # f = (i, i), g = (i+1, i): dim0 needs x = y+1, dim1 x = y.
        i = LoopInfo("i", 10)
        eqs = equations(
            [Affine.var("i"), Affine.var("i")],
            [Affine(1, {"i": 1}), Affine.var("i")],
            (i,),
        )
        assert exact_test(eqs) is None  # joint solve is stronger

    def test_unshared_loops(self):
        i = LoopInfo("i", 3)
        j = LoopInfo("j", 3)
        f = Reference("a", (Affine.var("i"),), (i,), is_write=True)
        g = Reference("a", (Affine(1, {"j": 1}),), (j,))
        eqs = build_equations(f, g)
        witness = exact_test(eqs)
        assert witness is not None
        # f at x equals g at y: x = y + 1.
        assert witness["u:i"] == witness["u:j"] + 1

    def test_unknown_counts_raise(self):
        i = LoopInfo("i", None)
        eqs = equations([Affine.var("i")], [Affine.var("i")], (i,))
        with pytest.raises(ValueError):
            exact_test(eqs)

    def test_witness_satisfies_equations(self):
        i = LoopInfo("i", 7)
        j = LoopInfo("j", 5)
        eqs = equations(
            [Affine(2, {"i": 3, "j": -1})],
            [Affine(0, {"i": 1, "j": 2})],
            (i, j),
        )
        witness = exact_test(eqs)
        if witness is not None:
            lhs = 2 + 3 * witness["x:i"] - witness["x:j"]
            rhs = witness["y:i"] + 2 * witness["y:j"]
            assert lhs == rhs

    def test_empty_equation_list(self):
        assert exact_test([]) == {}


@settings(max_examples=150, deadline=None)
@given(
    a0=st.integers(-6, 6), a1=st.integers(-4, 4),
    b0=st.integers(-6, 6), b1=st.integers(-4, 4),
    m=st.integers(1, 7),
    d=st.sampled_from(["*", "<", "=", ">"]),
)
def test_exact_equals_brute_force_1d(a0, a1, b0, b1, m, d):
    i = LoopInfo("i", m)
    eqs = equations([Affine(a0, {"i": a1})], [Affine(b0, {"i": b1})], (i,))

    def ok(x, y):
        return {"*": True, "<": x < y, "=": x == y, ">": x > y}[d]

    exists = any(
        a0 + a1 * x == b0 + b1 * y
        for x in range(1, m + 1)
        for y in range(1, m + 1)
        if ok(x, y)
    )
    witness = exact_test(eqs, (d,))
    assert (witness is not None) == exists
    if witness:
        x, y = witness["x:i"], witness["y:i"]
        assert a0 + a1 * x == b0 + b1 * y
        assert ok(x, y)
        assert 1 <= x <= m and 1 <= y <= m


@settings(max_examples=60, deadline=None)
@given(
    coeffs=st.tuples(*[st.integers(-3, 3) for _ in range(6)]),
    m1=st.integers(1, 4), m2=st.integers(1, 4),
)
def test_exact_equals_brute_force_2d(coeffs, m1, m2):
    a0, a1, a2, b0, b1, b2 = coeffs
    i = LoopInfo("i", m1)
    j = LoopInfo("j", m2)
    eqs = equations(
        [Affine(a0, {"i": a1, "j": a2})],
        [Affine(b0, {"i": b1, "j": b2})],
        (i, j),
    )
    exists = any(
        a0 + a1 * x1 + a2 * x2 == b0 + b1 * y1 + b2 * y2
        for x1 in range(1, m1 + 1)
        for y1 in range(1, m1 + 1)
        for x2 in range(1, m2 + 1)
        for y2 in range(1, m2 + 1)
    )
    assert (exact_test(eqs) is not None) == exists
