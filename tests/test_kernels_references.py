"""Self-consistency of the kernel catalog's reference implementations."""

import pytest

from repro import evaluate
from repro.kernels import (
    CATALOG,
    mesh_cells,
    ref_gauss_seidel,
    ref_jacobi,
    ref_matmul,
    ref_sor,
    ref_swap,
    ref_wavefront,
)


class TestCatalog:
    def test_every_entry_has_source_and_kind(self):
        for name, entry in CATALOG.items():
            assert entry["source"].strip(), name
            assert entry["kind"] in ("monolithic", "inplace", "accum"), \
                name
            if entry["kind"] == "inplace":
                assert "old" in entry, name

    def test_monolithic_entries_evaluate(self):
        defaults = {"n": 5, "m": 5}
        skip = {"forward_recurrence", "backward_recurrence", "matmul",
                "permutation_scatter", "spmv_csr"}
        for name, entry in CATALOG.items():
            if entry["kind"] != "monolithic" or name in skip:
                continue
            if entry.get("partial"):
                continue
            out = evaluate(entry["source"], bindings=defaults, deep=False)
            assert len(out) > 0, name


class TestReferences:
    def test_wavefront_values(self):
        a = ref_wavefront(4)
        assert a[1][1] == 1 and a[2][2] == 3
        assert a[4][4] == 63  # Delannoy-number wavefront

    def test_wavefront_symmetry(self):
        a = ref_wavefront(7)
        for i in range(1, 8):
            for j in range(1, 8):
                assert a[i][j] == a[j][i]

    def test_jacobi_pure(self):
        m = 6
        cells = mesh_cells(m)
        out = ref_jacobi(cells, m)
        assert out is not cells
        # Borders untouched.
        assert out[:m] == cells[:m]
        assert out[-m:] == cells[-m:]

    def test_gauss_seidel_differs_from_jacobi(self):
        m = 6
        cells = mesh_cells(m)
        assert ref_jacobi(cells, m) != ref_gauss_seidel(cells, m)

    def test_sor_omega_one_is_gauss_seidel(self):
        m = 6
        cells = mesh_cells(m)
        assert ref_sor(cells, m, 1.0) == pytest.approx(
            ref_gauss_seidel(cells, m)
        )

    def test_swap_involution(self):
        cells = [float(v) for v in range(12)]
        once = ref_swap(cells, 3, 4, 1, 3)
        twice = ref_swap(once, 3, 4, 1, 3)
        assert twice == cells

    def test_matmul_identity(self):
        n = 4
        identity = [[0.0] * (n + 1) for _ in range(n + 1)]
        for k in range(1, n + 1):
            identity[k][k] = 1.0
        x = [[0.0] * (n + 1)] + [
            [0.0] + [float(r * 10 + c) for c in range(1, n + 1)]
            for r in range(1, n + 1)
        ]
        out = ref_matmul(x, identity, n)
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                assert out[i][j] == x[i][j]

    def test_mesh_cells_deterministic(self):
        assert mesh_cells(5) == mesh_cells(5)
        assert mesh_cells(5, seed=1) != mesh_cells(5, seed=2)
        assert len(mesh_cells(7)) == 49
