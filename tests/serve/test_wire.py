"""The versioned wire schema: round-trips, validation, envelopes."""

import pytest

from repro import CodegenOptions, kernels
from repro.service.api import (
    WIRE_SCHEMA,
    CompileRequest,
    WireError,
    decode_requests,
    encode_requests,
    options_from_wire,
    options_to_wire,
)

SRC = "array (1,8) [ (i) := i*i | i <- [1..8] ]"


class TestRequestRoundTrip:
    def test_minimal(self):
        req = CompileRequest(SRC)
        wire = req.to_wire()
        assert wire == {"src": SRC}
        assert CompileRequest.from_wire(wire) == req

    def test_full(self):
        req = CompileRequest(
            kernels.JACOBI, params={"m": 8}, strategy="inplace",
            old_array="u", kind="definition",
        )
        assert CompileRequest.from_wire(req.to_wire()) == req

    def test_program_fields(self):
        req = CompileRequest(
            kernels.PROGRAM_PIPELINE, params={"n": 12},
            kind="program", result="main", fuse=False,
        )
        wire = req.to_wire()
        assert wire["kind"] == "program"
        assert wire["fuse"] is False
        assert CompileRequest.from_wire(wire) == req

    def test_warm_only_round_trips(self):
        req = CompileRequest(SRC, warm_only=True)
        assert CompileRequest.from_wire(req.to_wire()).warm_only

    def test_defaults_are_omitted(self):
        wire = CompileRequest(SRC, params={"n": 4}).to_wire()
        assert set(wire) == {"src", "params"}

    def test_options_round_trip(self):
        options = CodegenOptions(vectorize=True)
        req = CompileRequest(SRC, options=options)
        back = CompileRequest.from_wire(req.to_wire())
        assert back.options == options

    def test_options_default_instance_stays_empty(self):
        assert options_to_wire(CodegenOptions()) == {}
        assert options_from_wire(None) is None


class TestValidation:
    def test_non_string_source_refuses_wire(self):
        from repro import parse_expr

        req = CompileRequest(parse_expr(SRC))
        with pytest.raises(WireError, match="string sources"):
            req.to_wire()

    def test_unknown_request_field(self):
        with pytest.raises(WireError, match="unknown request field"):
            CompileRequest.from_wire({"src": SRC, "sorcery": True})

    def test_missing_src(self):
        with pytest.raises(WireError, match="string 'src'"):
            CompileRequest.from_wire({"params": {"n": 4}})

    def test_bad_kind(self):
        with pytest.raises(WireError, match="kind must be"):
            CompileRequest.from_wire({"src": SRC, "kind": "spell"})

    def test_bad_params(self):
        with pytest.raises(WireError, match="params must be"):
            CompileRequest.from_wire({"src": SRC, "params": [1, 2]})

    def test_unknown_option(self):
        with pytest.raises(WireError, match="unknown option"):
            options_from_wire({"warp_speed": 9})


class TestEnvelopes:
    def test_encode_decode(self):
        requests = [CompileRequest(SRC), CompileRequest(SRC, {"n": 4})]
        envelope = encode_requests(requests)
        assert envelope["schema"] == WIRE_SCHEMA
        assert decode_requests(envelope) == requests

    def test_bare_single_object(self):
        assert decode_requests({"src": SRC}) == [CompileRequest(SRC)]

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(WireError, match="unsupported wire schema"):
            decode_requests({"schema": "repro-serve/999",
                             "requests": [{"src": SRC}]})

    def test_empty_requests_rejected(self):
        with pytest.raises(WireError, match="non-empty"):
            decode_requests({"schema": WIRE_SCHEMA, "requests": []})

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            decode_requests([{"src": SRC}])
