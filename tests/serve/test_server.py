"""The HTTP front end: routes, admission control, timeouts."""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro import CompileRequest, CompileService, kernels
from repro.serve import CompileServer, ServeConfig
from repro.service.stats import STATS_SCHEMA

SRC = "array (1,8) [ (i) := i*i | i <- [1..8] ]"


class LiveServer:
    """An inline-mode server on a private loop thread, plus a client."""

    def __init__(self, config=None, service=None):
        self.server = CompileServer(
            config or ServeConfig(port=0), service=service,
        )
        self._started = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(30), "server failed to start"

    def _run(self):
        async def main():
            self._stop = asyncio.Event()
            self.host, self.port = await self.server.start()
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        self._loop = asyncio.new_event_loop()
        self._loop.run_until_complete(main())
        self._loop.close()

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def request(self, method, path, payload=None, raw_body=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=60)
        try:
            body = raw_body if raw_body is not None else (
                json.dumps(payload).encode() if payload is not None
                else None
            )
            conn.request(method, path, body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()


@pytest.fixture
def live():
    server = LiveServer()
    yield server
    server.close()


class TestRoutes:
    def test_healthz(self, live):
        status, payload = live.request("GET", "/healthz")
        assert status == 200 and payload["ok"] is True

    def test_compile_matches_direct_submit(self, live):
        status, payload = live.request(
            "POST", "/v1/compile", {"src": SRC, "params": {"n": 8}},
        )
        assert status == 200 and payload["ok"]
        direct = CompileService().submit(
            CompileRequest(SRC, params={"n": 8})
        )
        assert payload["source"] == direct.compiled.source
        assert payload["fingerprint"] == direct.fingerprint

    def test_second_request_is_cached(self, live):
        live.request("POST", "/v1/compile", {"src": SRC})
        status, payload = live.request("POST", "/v1/compile",
                                       {"src": SRC})
        assert status == 200
        assert payload["cached"] and payload["tier"] == "memory"

    def test_program_request(self, live):
        status, payload = live.request(
            "POST", "/v1/compile",
            {"src": kernels.PROGRAM_PIPELINE, "params": {"n": 12}},
        )
        assert status == 200 and payload["kind"] == "program"
        assert payload["sources"]  # at least one generated binding

    def test_batch_envelope_isolates_errors(self, live):
        status, payload = live.request("POST", "/v1/compile", {
            "schema": "repro-serve/1",
            "requests": [{"src": SRC}, {"src": "((( nope"}],
        })
        assert status == 200
        ok, bad = payload["results"]
        assert ok["ok"] and not bad["ok"]
        assert bad["error"]["type"]

    def test_warmup_strips_source(self, live):
        status, payload = live.request("POST", "/v1/warmup",
                                       {"src": SRC})
        assert status == 200 and payload["warm_only"]
        assert "source" not in payload
        status, payload = live.request("POST", "/v1/compile",
                                       {"src": SRC})
        assert payload["cached"]

    def test_compile_error_is_422(self, live):
        status, payload = live.request("POST", "/v1/compile",
                                       {"src": "((( nope"})
        assert status == 422
        assert payload["error"]["type"] and not payload["ok"]

    def test_bad_json_is_400(self, live):
        status, payload = live.request("POST", "/v1/compile",
                                       raw_body=b"{nope")
        assert status == 400 and payload["error"] == "bad-json"

    def test_bad_wire_is_400(self, live):
        status, payload = live.request("POST", "/v1/compile",
                                       {"src": SRC, "sorcery": 1})
        assert status == 400 and "sorcery" in payload["reason"]

    def test_unknown_route_is_404(self, live):
        status, payload = live.request("GET", "/nope")
        assert status == 404 and payload["error"] == "not-found"

    def test_wrong_method_is_405(self, live):
        status, _ = live.request("GET", "/v1/compile")
        assert status == 405

    def test_oversize_body_is_413(self, live):
        small = LiveServer(ServeConfig(port=0, max_body_bytes=64))
        try:
            status, payload = small.request(
                "POST", "/v1/compile", {"src": "x" * 200},
            )
            assert status == 413 and payload["error"] == "too-large"
        finally:
            small.close()

    def test_stats_schema(self, live):
        live.request("POST", "/v1/compile", {"src": SRC})
        live.request("POST", "/v1/compile", {"src": SRC})
        status, payload = live.request("GET", "/stats")
        assert status == 200
        assert payload["schema"] == STATS_SCHEMA
        assert payload["serve"]["admitted"] == 2
        service = payload["service"]
        assert service["requests"]["hits"] == 1
        assert service["store"]["memory"]["shards"] >= 1


class SlowService(CompileService):
    """A service whose builds block until released (admission tests)."""

    def __init__(self, delay_s):
        super().__init__()
        self.delay_s = delay_s

    def _builder(self, request, kind):
        build = super()._builder(request, kind)

        def slow():
            time.sleep(self.delay_s)
            return build()

        return slow


class TestAdmission:
    def test_queue_full_sheds_429(self):
        server = LiveServer(
            ServeConfig(port=0, queue_limit=2, timeout_s=30),
            service=SlowService(1.0),
        )
        try:
            results = []

            def fire(i):
                results.append(live_post(server, {
                    "src": f"array (1,{6 + i}) "
                           f"[ (i) := i | i <- [1..{6 + i}] ]",
                }))

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
                time.sleep(0.05)  # let earlier requests occupy slots
            for t in threads:
                t.join()
            statuses = sorted(status for status, _ in results)
            assert statuses.count(429) >= 1, statuses
            assert statuses.count(200) >= 2, statuses
            shed = next(p for s, p in results if s == 429)
            assert shed["error"] == "shed" and "retry" in shed["reason"]
        finally:
            server.close()

    def test_pathological_source_times_out_healthy_completes(self):
        server = LiveServer(
            ServeConfig(port=0, queue_limit=8, timeout_s=30),
            service=SlowService(0.0),
        )
        try:
            slow = {
                "schema": "repro-serve/1",
                "timeout_s": 0.3,
                "requests": [{"src": kernels.WAVEFRONT,
                              "params": {"n": 9}}],
            }
            server.server._service.delay_s = 5.0
            outcomes = {}

            def fire(name, payload, delay=0.0):
                time.sleep(delay)
                outcomes[name] = live_post(server, payload)

            t_slow = threading.Thread(target=fire, args=("slow", slow))
            t_slow.start()
            time.sleep(0.6)
            # the pathological request has timed out by now; healthy
            # traffic must still be served promptly
            server.server._service.delay_s = 0.0
            t_fast = threading.Thread(
                target=fire, args=("fast", {"src": SRC}),
            )
            t_fast.start()
            t_slow.join()
            t_fast.join()
            status, payload = outcomes["slow"]
            assert status == 504 and payload["error"] == "timeout"
            assert "abandoned" in payload["reason"]
            status, payload = outcomes["fast"]
            assert status == 200 and payload["ok"]
        finally:
            server.close()

    def test_timeout_counted_in_stats(self):
        server = LiveServer(
            ServeConfig(port=0, timeout_s=0.2),
            service=SlowService(5.0),
        )
        try:
            status, _ = live_post(server, {"src": SRC})
            assert status == 504
            _, stats = server.request("GET", "/stats")
            assert stats["serve"]["timeouts"] == 1
        finally:
            server.close()


def live_post(server, payload):
    return server.request("POST", "/v1/compile", payload)
