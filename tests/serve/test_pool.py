"""The compile worker pool: process mode, crash containment."""

import pytest

from repro import CompileRequest, CompileService
from repro.serve.pool import CRASH_ENV, BrokenProcessPool, CompilePool

SRC = "array (1,8) [ (i) := i*i | i <- [1..8] ]"


class TestInlineMode:
    def test_submit_wire_round_trip(self):
        with CompilePool(0) as pool:
            result = pool.submit_wire({"src": SRC}).result(60)
        assert result["ok"] and "source" in result

    def test_shares_one_service(self):
        with CompilePool(0) as pool:
            pool.submit_wire({"src": SRC}).result(60)
            second = pool.submit_wire({"src": SRC}).result(60)
        assert second["cached"] and second["tier"] == "memory"

    def test_injected_service(self):
        service = CompileService()
        with CompilePool(0, service=service) as pool:
            pool.submit_wire({"src": SRC}).result(60)
        assert service.metrics.stats()["misses"] == 1


class TestProcessMode:
    def test_worker_compiles_and_matches_direct(self, tmp_path):
        direct = CompileService().submit(CompileRequest(SRC))
        with CompilePool(1, disk_dir=tmp_path / "cache") as pool:
            result = pool.submit_wire({"src": SRC}).result(120)
        assert result["ok"]
        assert result["source"] == direct.compiled.source
        assert result["fingerprint"] == direct.fingerprint

    def test_disk_tier_shared_across_restart(self, tmp_path):
        cache = tmp_path / "cache"
        with CompilePool(1, disk_dir=cache) as pool:
            first = pool.submit_wire({"src": SRC}).result(120)
        with CompilePool(1, disk_dir=cache) as pool:
            again = pool.submit_wire({"src": SRC}).result(120)
        assert not first["cached"]
        assert again["cached"] and again["tier"] == "disk"

    def test_crash_breaks_then_restart_recovers(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "__kaboom__")
        with CompilePool(1) as pool:
            ok = pool.submit_wire({"src": SRC}).result(120)
            assert ok["ok"]
            crash = pool.submit_wire({
                "src": SRC + "  -- __kaboom__",
            })
            with pytest.raises(BrokenProcessPool):
                crash.result(120)
            pool.restart()
            assert pool.restarts == 1
            after = pool.submit_wire({"src": SRC}).result(120)
            assert after["ok"]

    def test_stats_future_samples_a_worker(self):
        with CompilePool(1) as pool:
            pool.submit_wire({"src": SRC}).result(120)
            stats = pool.stats_future().result(120)
        assert stats["schema"] == "repro-stats/1"


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        CompilePool(-1)
