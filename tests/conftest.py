"""Shared pytest configuration for the test suite.

Registers hypothesis settings profiles when hypothesis is installed:

* ``nightly`` — the raised budget the scheduled CI workflow runs with
  (``HYPOTHESIS_PROFILE=nightly``): more examples, no deadline, so
  slow shrinks never flake the cron job.

A profile is only *loaded* when ``HYPOTHESIS_PROFILE`` names it;
plain local runs keep hypothesis's defaults.
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # hypothesis-free environments still run the rest
    settings = None

if settings is not None:
    settings.register_profile(
        "nightly",
        max_examples=300,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    profile = os.environ.get("HYPOTHESIS_PROFILE")
    if profile:
        settings.load_profile(profile)
