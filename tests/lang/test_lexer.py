"""Tests for the tokenizer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_integer(self):
        assert kinds("42") == [("int", "42")]
        assert tokenize("42")[0].value == 42

    def test_float(self):
        assert tokenize("2.5")[0].value == 2.5
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_dotdot_not_a_float(self):
        # '1..n' must lex as int, '..', ident — not a float.
        assert kinds("1..5") == [("int", "1"), ("op", ".."), ("int", "5")]

    def test_identifier(self):
        assert kinds("foo_bar'") == [("ident", "foo_bar'")]

    def test_keywords(self):
        for kw in ("let", "letrec", "in", "if", "then", "else", "where"):
            assert kinds(kw) == [("kw", kw)]

    def test_letrec_star(self):
        assert kinds("letrec*") == [("kw", "letrec*")]

    def test_booleans_are_keywords(self):
        assert kinds("True False") == [("kw", "True"), ("kw", "False")]

    def test_comment_to_end_of_line(self):
        assert kinds("1 -- comment here\n2") == [("int", "1"), ("int", "2")]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestOperators:
    def test_multichar_longest_match(self):
        assert kinds(":=") == [("op", ":=")]
        assert kinds("<-") == [("op", "<-")]
        assert kinds("<=") == [("op", "<=")]
        assert kinds("++") == [("op", "++")]
        assert kinds("/=") == [("op", "/=")]

    def test_nested_comp_brackets(self):
        assert kinds("[* *]") == [("op", "[*"), ("op", "*]")]

    def test_star_bracket_closes_after_expression(self):
        toks = kinds("i*2 *]")
        assert toks == [
            ("ident", "i"), ("op", "*"), ("int", "2"), ("op", "*]"),
        ]

    def test_index_operator(self):
        assert kinds("a!i") == [("ident", "a"), ("op", "!"), ("ident", "i")]

    def test_arrow_and_lambda(self):
        assert kinds("\\x -> x") == [
            ("op", "\\"), ("ident", "x"), ("op", "->"), ("ident", "x"),
        ]

    def test_helpers(self):
        token = tokenize(":=")[0]
        assert token.is_op(":=")
        assert token.is_op("+", ":=")
        assert not token.is_op("+")
        assert not token.is_kw("let")

    def test_paper_wavefront_lexes(self):
        src = "[ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ]"
        tokens = tokenize(src)
        assert tokens[-1].kind == "eof"
        assert any(t.is_op(":=") for t in tokens)
        assert any(t.is_op("<-") for t in tokens)
