"""Tests for the parser: grammar coverage and paper syntax."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_program


class TestAtoms:
    def test_literals(self):
        assert parse_expr("42") == ast.Lit(42)
        assert parse_expr("2.5") == ast.Lit(2.5)
        assert parse_expr("True") == ast.Lit(True)

    def test_variable(self):
        assert parse_expr("x") == ast.Var("x")

    def test_parenthesized(self):
        assert parse_expr("(x)") == ast.Var("x")

    def test_tuple(self):
        assert parse_expr("(1, 2)") == ast.TupleExpr([ast.Lit(1), ast.Lit(2)])
        assert isinstance(parse_expr("(i, j, k)"), ast.TupleExpr)

    def test_list(self):
        assert parse_expr("[]") == ast.ListExpr([])
        assert parse_expr("[1]") == ast.ListExpr([ast.Lit(1)])
        assert parse_expr("[1, 2, 3]") == ast.ListExpr(
            [ast.Lit(1), ast.Lit(2), ast.Lit(3)]
        )


class TestOperators:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expr("10 - 2 - 3")
        assert e.op == "-"
        assert isinstance(e.left, ast.BinOp) and e.left.op == "-"

    def test_append_right_associative(self):
        e = parse_expr("a ++ b ++ c")
        assert isinstance(e, ast.Append)
        assert isinstance(e.right, ast.Append)

    def test_unary_minus(self):
        e = parse_expr("-x + 1")
        assert e.op == "+"
        assert isinstance(e.left, ast.UnOp)

    def test_comparison(self):
        e = parse_expr("i + 1 <= n")
        assert e.op == "<="

    def test_logical(self):
        e = parse_expr("a && b || c")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_index_binds_looser_than_application(self):
        e = parse_expr("f a ! i")
        assert isinstance(e, ast.Index)
        assert isinstance(e.arr, ast.App)

    def test_index_in_arithmetic(self):
        e = parse_expr("a!(i-1) + a!(i+1)")
        assert e.op == "+"
        assert isinstance(e.left, ast.Index)

    def test_sv_pair_lowest(self):
        e = parse_expr("3*i - 1 := a!(i-1) + 2")
        assert isinstance(e, ast.SVPair)
        assert isinstance(e.sub, ast.BinOp)
        assert isinstance(e.val, ast.BinOp)

    def test_application(self):
        e = parse_expr("f x y")
        assert isinstance(e, ast.App)
        assert e.fn == ast.Var("f")
        assert len(e.args) == 2


class TestSequences:
    def test_unit_stride(self):
        e = parse_expr("[1..n]")
        assert isinstance(e, ast.EnumSeq)
        assert e.second is None

    def test_explicit_stride(self):
        e = parse_expr("[1,3..n]")
        assert e.second == ast.Lit(3)

    def test_backward(self):
        e = parse_expr("[20,19..1]")
        assert isinstance(e, ast.EnumSeq)
        assert e.stop == ast.Lit(1)


class TestComprehensions:
    def test_simple(self):
        e = parse_expr("[ i*i | i <- [1..n] ]")
        assert isinstance(e, ast.Comp)
        assert len(e.quals) == 1
        assert isinstance(e.quals[0], ast.Generator)

    def test_multiple_generators(self):
        e = parse_expr("[ (i,j) := 0 | i <- [1..n], j <- [1..n] ]")
        assert len(e.quals) == 2

    def test_guard(self):
        e = parse_expr("[ i | i <- [1..n], i > 2 ]")
        assert isinstance(e.quals[1], ast.Guard)

    def test_let_qualifier(self):
        e = parse_expr("[ v | i <- [1..n], let v = i + 1 ]")
        assert isinstance(e.quals[1], ast.LetQual)

    def test_let_qualifier_then_generator(self):
        e = parse_expr("[* [1 := v] | let v = 2; i <- [1..3] *]")
        assert isinstance(e.quals[0], ast.LetQual)
        assert isinstance(e.quals[1], ast.Generator)

    def test_nested_comprehension(self):
        e = parse_expr("[* [ 3*i := 1 ] ++ [ 3*i-1 := 2 ] | i <- [1..n] *]")
        assert isinstance(e, ast.NestedComp)
        assert isinstance(e.body, ast.Append)

    def test_nested_comprehension_without_quals(self):
        e = parse_expr("[* [1 := 2] *]")
        assert isinstance(e, ast.NestedComp)
        assert e.quals == []

    def test_nested_inside_nested(self):
        e = parse_expr(
            "[* [* [ (i,j) := 0 ] | j <- [1..m] *] | i <- [1..n] *]"
        )
        assert isinstance(e.body, ast.NestedComp)


class TestBindingsAndLet:
    def test_let(self):
        e = parse_expr("let x = 1 in x + 1")
        assert e.kind == "let"
        assert e.binds[0].name == "x"

    def test_letrec_star(self):
        e = parse_expr("letrec* a = array (1,3) [ i := i | i <- [1..3] ] in a")
        assert e.kind == "letrec*"

    def test_multiple_bindings(self):
        e = parse_expr("let x = 1; y = x + 1 in y")
        assert [b.name for b in e.binds] == ["x", "y"]

    def test_function_binding_desugars_to_lambda(self):
        e = parse_expr("let f x y = x + y in f 1 2")
        assert isinstance(e.binds[0].expr, ast.Lam)
        assert e.binds[0].params == ["x", "y"]

    def test_where_desugars_to_let(self):
        e = parse_expr("x + v where v = 3")
        assert isinstance(e, ast.Let)
        assert e.binds[0].name == "v"
        assert isinstance(e.body, ast.BinOp)

    def test_where_inside_comprehension_head(self):
        e = parse_expr("[ i := v where v = i * 2 | i <- [1..3] ]")
        assert isinstance(e.head, ast.Let)

    def test_lambda(self):
        e = parse_expr("\\x y -> x * y")
        assert isinstance(e, ast.Lam)
        assert e.params == ["x", "y"]

    def test_if(self):
        e = parse_expr("if x > 0 then 1 else 0")
        assert isinstance(e, ast.If)

    def test_if_as_operand(self):
        e = parse_expr("1 + (if b then 2 else 3)")
        assert isinstance(e.right, ast.If)


class TestPrograms:
    def test_single_binding(self):
        binds = parse_program("main = 1 + 2")
        assert len(binds) == 1
        assert binds[0].name == "main"

    def test_several_bindings(self):
        binds = parse_program("f x = x * 2; main = f 21")
        assert [b.name for b in binds] == ["f", "main"]


class TestPaperSources:
    def test_wavefront(self):
        from repro.kernels import WAVEFRONT

        e = parse_expr(WAVEFRONT)
        assert isinstance(e, ast.Let)
        assert e.kind == "letrec*"
        body = e.binds[0].expr
        assert isinstance(body, ast.App)
        assert body.fn == ast.Var("array")

    def test_all_catalog_kernels_parse(self):
        from repro.kernels import CATALOG

        for name, entry in CATALOG.items():
            parse_expr(entry["source"])

    def test_paper_sum_example(self):
        e = parse_expr("sum [ a!k * b!k | k <- [1..n] ]")
        assert isinstance(e, ast.App)
        assert isinstance(e.args[0], ast.Comp)


class TestErrors:
    def test_unclosed_bracket(self):
        with pytest.raises(ParseError):
            parse_expr("[1, 2")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")

    def test_missing_in(self):
        with pytest.raises(ParseError):
            parse_expr("let x = 1 x")

    def test_empty_expression(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_error_carries_position(self):
        try:
            parse_expr("1 +\n  )")
        except ParseError as exc:
            assert exc.line == 2
        else:
            raise AssertionError("expected ParseError")
