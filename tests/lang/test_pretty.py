"""Pretty-printer tests, including property-based round-tripping."""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty


def roundtrips(src):
    e = parse_expr(src)
    printed = pretty(e)
    assert parse_expr(printed) == e, printed
    return printed


class TestRendering:
    def test_simple(self):
        assert pretty(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"

    def test_parens_only_when_needed(self):
        assert pretty(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert pretty(parse_expr("1 + (2 * 3)")) == "1 + 2 * 3"

    def test_index_compact(self):
        assert pretty(parse_expr("a!(i-1)")) == "a!(i - 1)"

    def test_comprehension(self):
        assert (
            pretty(parse_expr("[ i*i | i <- [1..n] ]"))
            == "[i * i | i <- [1..n]]"
        )

    def test_nested_comprehension(self):
        out = pretty(parse_expr("[* [1 := 2] | i <- [1..3] *]"))
        assert out.startswith("[*") and out.endswith("*]")

    def test_sequences(self):
        assert pretty(parse_expr("[1..n]")) == "[1..n]"
        assert pretty(parse_expr("[10,8..0]")) == "[10,8..0]"

    def test_lambda_and_let(self):
        assert pretty(parse_expr("\\x -> x + 1")) == "\\x -> x + 1"
        assert pretty(parse_expr("let x = 1 in x")) == "let x = 1 in x"


class TestRoundTrips:
    def test_paper_kernels_roundtrip(self):
        from repro.kernels import CATALOG

        for entry in CATALOG.values():
            roundtrips(entry["source"])

    def test_tricky_cases(self):
        for src in [
            "a ++ b ++ c",
            "(a ++ b) ++ c",
            "- (x + 1)",
            "f (g x) y",
            "a!(i, j)",
            "if a then b else c",
            "1 := 2",
            "[ x | i <- [1..3], i > 1, let x = i ]",
            "not (a && b)",
            "letrec* x = [1] in x",
            "f a ! i",
        ]:
            roundtrips(src)


# ----------------------------------------------------------------------
# Property-based: random ASTs print-then-parse to themselves.

_names = st.sampled_from(["x", "y", "i", "j", "aa", "bb"])


def _exprs(depth):
    leaf = st.one_of(
        st.integers(0, 999).map(ast.Lit),
        st.booleans().map(ast.Lit),
        _names.map(ast.Var),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "==", "<", "&&"]),
                  sub, sub).map(
            lambda t: ast.BinOp(op=t[0], left=t[1], right=t[2])
        ),
        st.tuples(sub, sub).map(lambda t: ast.Append(left=t[0], right=t[1])),
        st.tuples(sub, sub).map(lambda t: ast.Index(arr=t[0], idx=t[1])),
        st.tuples(sub, sub).map(lambda t: ast.SVPair(sub=t[0], val=t[1])),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.If(cond=t[0], then=t[1], else_=t[2])
        ),
        st.lists(sub, min_size=0, max_size=3).map(
            lambda items: ast.ListExpr(items=items)
        ),
        st.tuples(sub, sub).map(
            lambda t: ast.TupleExpr(items=[t[0], t[1]])
        ),
        st.tuples(_names, sub).map(
            lambda t: ast.Lam(params=[t[0]], body=t[1])
        ),
        st.tuples(_names, sub, sub).map(
            lambda t: ast.Let(
                kind="let",
                binds=[ast.Binding(name=t[0], params=[], expr=t[1])],
                body=t[2],
            )
        ),
        st.tuples(_names, sub, sub).map(
            lambda t: ast.Comp(
                head=t[1],
                quals=[ast.Generator(
                    var=t[0],
                    source=ast.EnumSeq(start=ast.Lit(1), second=None,
                                       stop=t[2]),
                )],
            )
        ),
    )


@settings(max_examples=200, deadline=None)
@given(_exprs(3))
def test_pretty_parse_roundtrip(expr):
    printed = pretty(expr)
    assert parse_expr(printed) == expr
