"""AST helper functions: free variables and traversal."""

from repro.lang import ast
from repro.lang.ast import free_vars
from repro.lang.parser import parse_expr


def fv(src):
    return free_vars(parse_expr(src))


class TestFreeVars:
    def test_variable(self):
        assert fv("x") == {"x"}

    def test_literals_closed(self):
        assert fv("42") == set()

    def test_operators_union(self):
        assert fv("x + y * z") == {"x", "y", "z"}

    def test_lambda_binds(self):
        assert fv("\\x -> x + y") == {"y"}
        assert fv("\\x y -> x + y") == set()

    def test_let_binds_body(self):
        assert fv("let v = x in v + y") == {"x", "y"}

    def test_plain_let_not_recursive(self):
        assert fv("let v = v in v") == {"v"}

    def test_letrec_is_recursive(self):
        assert fv("letrec v = v in v") == set()

    def test_comprehension_generator_binds(self):
        assert fv("[ i + k | i <- [1..n] ]") == {"k", "n"}

    def test_generator_scope_is_left_to_right(self):
        assert fv("[ 0 | i <- [1..n], j <- [1..i] ]") == {"n"}
        assert fv("[ 0 | j <- [1..i], i <- [1..n] ]") == {"i", "n"}

    def test_guard_sees_generators(self):
        assert fv("[ i | i <- [1..9], i > t ]") == {"t"}

    def test_let_qualifier_binds_downstream(self):
        assert fv("[ v | i <- [1..3], let v = i * s ]") == {"s"}

    def test_nested_comprehension(self):
        assert fv("[* [ i := a!(i-1) ] | i <- [1..n] *]") == {"a", "n"}

    def test_index_and_pair(self):
        assert fv("a!(i, j) ") == {"a", "i", "j"}
        assert fv("s := v") == {"s", "v"}

    def test_where(self):
        assert fv("x + v where v = y") == {"x", "y"}

    def test_paper_wavefront_free_vars(self):
        from repro.kernels import WAVEFRONT

        # Only the size parameter is free; 'a' is letrec*-bound.
        assert fv(WAVEFRONT) == {"n", "array"}


class TestTraversal:
    def test_walk_preorder(self):
        expr = parse_expr("1 + f 2")
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds[0] == "BinOp"
        assert "App" in kinds and "Lit" in kinds

    def test_children_skips_pos(self):
        expr = parse_expr("(1, 2, 3)")
        assert len(expr.children()) == 3

    def test_walk_covers_qualifiers(self):
        expr = parse_expr("[ i | i <- [1..n], i > 2 ]")
        names = {n.name for n in expr.walk() if isinstance(n, ast.Var)}
        assert names == {"i", "n"}
