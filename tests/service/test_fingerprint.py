"""Canonical fingerprints: what must collide, what must not."""

import pytest

from repro import CodegenOptions, kernels
from repro.service import canonical_comp, canonical_expr, fingerprint
from repro.service.fingerprint import PIPELINE_SALT

#: The wavefront kernel under a consistent renaming of every bound
#: name (the array and both generator indices).
WAVEFRONT_RENAMED = """
letrec* grid = array ((1,1),(n,n))
   ([ (1,col) := 1 | col <- [1..n] ] ++
    [ (row,1) := 1 | row <- [2..n] ] ++
    [ (row,col) := grid!(row-1,col) + grid!(row,col-1)
                   + grid!(row-1,col-1)
      | row <- [2..n], col <- [2..n] ])
in grid
"""


class TestInvariance:
    def test_bound_variable_renaming(self):
        assert fingerprint(kernels.WAVEFRONT, {"n": 8}) == fingerprint(
            WAVEFRONT_RENAMED, {"n": 8}
        )

    def test_whitespace_and_layout(self):
        flattened = " ".join(kernels.WAVEFRONT.split())
        assert fingerprint(kernels.WAVEFRONT, {"n": 8}) == fingerprint(
            flattened, {"n": 8}
        )

    def test_repeated_calls_stable(self):
        first = fingerprint(kernels.SOR, {"m": 8, "omega": 1})
        second = fingerprint(kernels.SOR, {"m": 8, "omega": 1})
        assert first == second

    def test_accepts_parsed_ast(self):
        from repro.lang.parser import parse_expr

        assert fingerprint(
            parse_expr(kernels.SQUARES), {"n": 5}
        ) == fingerprint(kernels.SQUARES, {"n": 5})


class TestDiscrimination:
    def test_params_distinguish(self):
        assert fingerprint(kernels.WAVEFRONT, {"n": 8}) != fingerprint(
            kernels.WAVEFRONT, {"n": 9}
        )

    def test_options_distinguish(self):
        base = fingerprint(kernels.SQUARES, {"n": 5})
        assert base != fingerprint(
            kernels.SQUARES, {"n": 5},
            options=CodegenOptions(vectorize=True),
        )
        assert base != fingerprint(
            kernels.SQUARES, {"n": 5},
            options=CodegenOptions(bounds_checks=True),
        )

    def test_explicit_default_options_differ_from_auto(self):
        # None means "pipeline chooses the checks", which is a
        # different request than explicitly-all-off options.
        assert fingerprint(kernels.SQUARES, {"n": 5}) != fingerprint(
            kernels.SQUARES, {"n": 5}, options=CodegenOptions()
        )

    def test_strategy_distinguishes(self):
        assert fingerprint(kernels.SQUARES, {"n": 5}) != fingerprint(
            kernels.SQUARES, {"n": 5}, force_strategy="thunked"
        )

    def test_free_variable_renaming_distinguishes(self):
        # Free names (size params, input arrays) carry meaning.
        assert fingerprint(
            "letrec* a = array (1,n) [ i := i | i <- [1..n] ] in a"
        ) != fingerprint(
            "letrec* a = array (1,m) [ i := i | i <- [1..m] ] in a"
        )

    def test_different_kernels_distinguish(self):
        fps = {
            fingerprint(kernels.WAVEFRONT, {"n": 8}),
            fingerprint(kernels.SQUARES, {"n": 8}),
            fingerprint(kernels.FORWARD_RECURRENCE, {"n": 8}),
            fingerprint(kernels.CYCLIC_FALLBACK),
        }
        assert len(fps) == 4

    def test_salt_invalidates(self):
        base = fingerprint(kernels.WAVEFRONT, {"n": 8})
        assert base != fingerprint(
            kernels.WAVEFRONT, {"n": 8}, salt=PIPELINE_SALT + "-next"
        )

    def test_mode_and_old_array_distinguish(self):
        base = fingerprint(kernels.JACOBI, {"m": 6})
        assert base != fingerprint(
            kernels.JACOBI, {"m": 6}, mode="inplace", old_array="u"
        )


class TestCanonicalForms:
    def test_canonical_expr_alpha_equivalence(self):
        assert canonical_expr(r"\x -> x + y") == canonical_expr(
            r"\z -> z + y"
        )
        assert canonical_expr(r"\x -> x") != canonical_expr(r"\x -> y")

    def test_canonical_expr_let_kinds_distinguished(self):
        assert canonical_expr("let a = 1 in a") != canonical_expr(
            "letrec a = 1 in a"
        )

    def test_canonical_comp_loop_ids(self):
        from repro.comprehension.build import (
            build_array_comp,
            find_array_comp,
        )
        from repro.lang.parser import parse_expr

        name, bounds, pairs = find_array_comp(
            parse_expr(kernels.WAVEFRONT)
        )
        comp = build_array_comp(name, bounds, pairs, {"n": 4})
        text = canonical_comp(comp)
        assert "%L0" in text and "%self" in text
        # No surface identifier from the source leaks through for
        # bound names.
        assert "(var a)" not in text

    def test_front_end_errors_propagate(self):
        with pytest.raises(Exception):
            fingerprint("letrec* a = array", {"n": 4})
