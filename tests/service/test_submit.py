"""The redesigned submit() API and its deprecated shims."""

import pytest

from repro import CompileRequest, CompileService, kernels
from repro.service.api import CompileResult

SRC = "array (1,8) [ (i) := i*i | i <- [1..8] ]"
BAD = "((( this never parses"


class TestSubmitSingle:
    def test_definition(self):
        result = CompileService().submit(CompileRequest(SRC))
        assert isinstance(result, CompileResult)
        assert result.ok and result.kind == "definition"
        assert result.fingerprint and not result.cached
        assert result.value() is result.compiled
        assert result.elapsed_s > 0

    def test_kind_auto_detects_program(self):
        result = CompileService().submit(CompileRequest(
            kernels.PROGRAM_PIPELINE, params={"n": 12},
        ))
        assert result.ok and result.kind == "program"

    def test_hit_sets_cached_and_tier(self):
        service = CompileService()
        service.submit(CompileRequest(SRC))
        again = service.submit(CompileRequest(SRC))
        assert again.cached and again.tier == "memory"
        assert again.compiled is service.submit(CompileRequest(SRC)).compiled

    def test_error_is_captured_not_raised(self):
        result = CompileService().submit(CompileRequest(BAD))
        assert not result.ok and result.error is not None
        with pytest.raises(type(result.error)):
            result.value()

    def test_bad_kind_is_an_errored_result(self):
        result = CompileService().submit(CompileRequest(SRC, kind="spell"))
        assert not result.ok and "unknown request kind" in str(result.error)

    def test_normalizes_tuples_and_dicts(self):
        service = CompileService()
        from_tuple = service.submit((SRC, {"n": 8}))
        from_dict = service.submit({"src": SRC, "params": {"n": 8}})
        assert from_tuple.ok and from_dict.cached
        assert from_tuple.fingerprint == from_dict.fingerprint


class TestSubmitBatch:
    def test_list_fans_out_in_order(self):
        service = CompileService()
        sources = [
            f"array (1,{n}) [ (i) := i*{n} | i <- [1..{n}] ]"
            for n in (4, 5, 6)
        ]
        results = service.submit([CompileRequest(s) for s in sources])
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)

    def test_batch_isolates_errors(self):
        results = CompileService().submit(
            [CompileRequest(SRC), CompileRequest(BAD)]
        )
        assert results[0].ok and not results[1].ok

    def test_warm_only_still_compiles_and_caches(self):
        service = CompileService()
        warm = service.submit(CompileRequest(SRC, warm_only=True))
        assert warm.ok and warm.warm_only and not warm.cached
        hot = service.submit(CompileRequest(SRC))
        assert hot.cached and hot.tier == "memory"


class TestDeprecatedShims:
    """The old four methods: still working, warning, byte-identical."""

    def test_compile_matches_submit(self):
        with pytest.warns(DeprecationWarning, match="compile"):
            old = CompileService().compile(SRC, params={"n": 8})
        new = CompileService().submit(
            CompileRequest(SRC, params={"n": 8})
        ).value()
        assert old.source == new.source

    def test_compile_program_matches_submit(self):
        with pytest.warns(DeprecationWarning, match="compile_program"):
            old = CompileService().compile_program(
                kernels.PROGRAM_PIPELINE, params={"n": 12},
            )
        new = CompileService().submit(CompileRequest(
            kernels.PROGRAM_PIPELINE, params={"n": 12}, kind="program",
        )).value()
        assert old.sources() == new.sources()

    def test_compile_batch_matches_submit(self):
        with pytest.warns(DeprecationWarning, match="compile_batch"):
            old = CompileService().compile_batch([SRC, BAD])
        new = CompileService().submit(
            [CompileRequest(SRC), CompileRequest(BAD)]
        )
        assert [r.ok for r in old] == [r.ok for r in new]
        assert old[0].compiled.source == new[0].compiled.source

    def test_warmup_summary_counts(self):
        service = CompileService()
        with pytest.warns(DeprecationWarning, match="warmup"):
            summary = service.warmup([SRC, SRC, BAD])
        assert summary["total"] == 3
        assert summary["compiled"] >= 1 and summary["errors"] == 1
        # the duplicate either coalesced onto the first compile
        # (counted compiled) or hit the fresh entry (counted cached)
        assert summary["compiled"] + summary["cached"] == 2

    def test_warmup_routes_program_sources(self):
        """Regression: program sources used to fail the definition
        parser inside warmup; kind auto-detection now routes them."""
        service = CompileService()
        with pytest.warns(DeprecationWarning):
            summary = service.warmup(
                [CompileRequest(kernels.PROGRAM_PIPELINE,
                                params={"n": 12})]
            )
        assert summary == {"total": 1, "compiled": 1,
                           "cached": 0, "errors": 0}
        hot = service.submit(CompileRequest(
            kernels.PROGRAM_PIPELINE, params={"n": 12},
        ))
        assert hot.cached and hot.kind == "program"
