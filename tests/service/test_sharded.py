"""Concurrency suite: sharded memory tier, per-shard coalescing,
cross-process disk sharing."""

import hashlib
import subprocess
import sys
import threading
import time

import repro.core.pipeline as pipeline_mod
from repro import CompileRequest, CompileService
from repro.service.store import MemoryLRU, ShardedLRU, shard_index

SRC = "array (1,8) [ (i) := i*i | i <- [1..8] ]"


def fp(i: int) -> str:
    """A realistic fingerprint (sha256 hexdigest) for test entries."""
    return hashlib.sha256(str(i).encode()).hexdigest()


class TestShardIndex:
    def test_stable_and_in_range(self):
        for i in range(200):
            k = shard_index(fp(i), 8)
            assert 0 <= k < 8
            assert k == shard_index(fp(i), 8)

    def test_single_shard_is_zero(self):
        assert shard_index(fp(1), 1) == 0

    def test_non_hex_key_tolerated(self):
        assert 0 <= shard_index("not-hex!", 8) < 8

    def test_distribution_is_roughly_uniform(self):
        counts = [0] * 8
        for i in range(4000):
            counts[shard_index(fp(i), 8)] += 1
        assert min(counts) > 300  # perfectly uniform would be 500


class TestShardedLRU:
    def test_drop_in_surface(self):
        lru = ShardedLRU(capacity=64, shards=8)
        keys = [fp(i) for i in range(20)]
        for i, key in enumerate(keys):
            lru.put(key, f"v{i}")
        assert len(lru) == 20
        assert all(key in lru for key in keys)
        assert lru.get(keys[3]) == "v3"
        assert sorted(lru.keys()) == sorted(keys)
        assert lru.invalidate(keys[3]) and not lru.invalidate(keys[3])
        lru.clear()
        assert len(lru) == 0

    def test_capacity_spreads_over_shards(self):
        lru = ShardedLRU(capacity=64, shards=8)
        assert lru.shard_count == 8
        assert lru.capacity >= 64

    def test_more_shards_than_capacity_clamps(self):
        lru = ShardedLRU(capacity=4, shards=16)
        assert lru.shard_count == 4

    def test_eviction_is_per_shard_lru(self):
        lru = ShardedLRU(capacity=8, shards=2)
        shard0 = [fp(i) for i in range(100)
                  if shard_index(fp(i), 2) == 0][:6]
        for key in shard0:
            lru.put(key, key)
        # per-shard capacity is 4: the two oldest shard-0 keys are gone
        assert lru.evictions == 2
        assert shard0[0] not in lru and shard0[-1] in lru

    def test_hit_miss_accounting_per_shard(self):
        lru = ShardedLRU(capacity=32, shards=4)
        key = fp(7)
        lru.put(key, "x")
        lru.get(key)
        lru.get(fp(8))
        stats = lru.shard_stats()
        assert len(stats) == 4
        assert sum(s["hits"] for s in stats) == 1
        assert sum(s["misses"] for s in stats) == 1
        assert stats[shard_index(key, 4)]["hits"] == 1

    def test_thread_parallel_ops_stay_consistent(self):
        lru = ShardedLRU(capacity=256, shards=8)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = fp(base * 1000 + i)
                    lru.put(key, key)
                    got = lru.get(key)
                    assert got == key
                    lru.invalidate(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(b,))
                   for b in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(lru) == 0

    def test_memory_lru_counts_hits_misses(self):
        lru = MemoryLRU(capacity=4)
        lru.put("k", "v")
        lru.get("k")
        lru.get("absent")
        assert lru.hits == 1 and lru.misses == 1


class TestPerShardCoalescing:
    def test_identical_concurrent_requests_compile_once(self, monkeypatch):
        calls = {"count": 0}
        real = pipeline_mod._compile_array

        def slow(*args, **kwargs):
            calls["count"] += 1
            time.sleep(0.2)
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "_compile_array", slow)
        service = CompileService(shards=8)
        results = []

        def fire():
            results.append(service.submit(CompileRequest(SRC)))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert calls["count"] == 1
        assert all(r.ok for r in results)
        compiled = {id(r.compiled) for r in results}
        assert len(compiled) == 1  # everyone got the leader's object
        assert service.metrics.stats()["coalesced"] == 5

    def test_different_shards_compile_concurrently(self, monkeypatch):
        """Builds on different shards overlap in time (the point of
        sharding the in-flight table)."""
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()
        real = pipeline_mod._compile_array

        def tracked(*args, **kwargs):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            try:
                time.sleep(0.15)
                return real(*args, **kwargs)
            finally:
                with lock:
                    active["now"] -= 1

        monkeypatch.setattr(pipeline_mod, "_compile_array", tracked)
        service = CompileService(shards=8)
        sources = [
            f"array (1,{n}) [ (i) := i+{n} | i <- [1..{n}] ]"
            for n in range(4, 10)
        ]
        service.submit([CompileRequest(s) for s in sources],
                       max_workers=6)
        assert active["peak"] >= 2


_CHILD = r"""
import sys
sys.path.insert(0, {src_path!r})
from repro import CompileRequest, CompileService

service = CompileService(disk_dir={cache!r})
result = service.submit(CompileRequest({src!r}))
assert result.ok, result.error
print(result.tier or "compiled", result.fingerprint)
"""


class TestCrossProcessSharing:
    def test_disk_tier_shared_between_processes(self, tmp_path):
        cache = str(tmp_path / "cache")
        script = _CHILD.format(src_path="src", cache=cache, src=SRC)
        first = subprocess.run(
            [sys.executable, "-c", script], cwd="/root/repo",
            capture_output=True, text=True, timeout=120,
        )
        assert first.returncode == 0, first.stderr
        tier1, fp1 = first.stdout.split()
        second = subprocess.run(
            [sys.executable, "-c", script], cwd="/root/repo",
            capture_output=True, text=True, timeout=120,
        )
        assert second.returncode == 0, second.stderr
        tier2, fp2 = second.stdout.split()
        assert tier1 == "compiled"  # fresh cache: a real compile
        assert tier2 == "disk"      # second process reuses it
        assert fp1 == fp2
