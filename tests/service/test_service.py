"""CompileService: accounting, batching, dedup, pipeline wiring."""

import threading
import time

import pytest

import repro
import repro.core.pipeline as pipeline_mod
from repro import (
    CompileError,
    CompileRequest,
    CompileService,
    kernels,
)
from repro.service import resolve_cache
from repro.service.service import BatchResult, default_service


@pytest.fixture
def counting_pipeline(monkeypatch):
    """Count (and optionally slow down) real pipeline invocations."""
    calls = {"count": 0, "delay": 0.0}
    real = pipeline_mod._compile_array

    def wrapper(*args, **kwargs):
        calls["count"] += 1
        if calls["delay"]:
            time.sleep(calls["delay"])
        return real(*args, **kwargs)

    monkeypatch.setattr(pipeline_mod, "_compile_array", wrapper)
    return calls


class TestAccounting:
    def test_miss_then_hit(self, counting_pipeline):
        service = CompileService()
        first = service.compile(kernels.WAVEFRONT, params={"n": 6})
        second = service.compile(kernels.WAVEFRONT, params={"n": 6})
        assert first is second
        assert counting_pipeline["count"] == 1
        stats = service.stats()["requests"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["memory_hits"] == 1
        assert stats["requests"] == 2
        assert 0 < stats["hit_rate"] < 1

    def test_hit_skips_dependence_analysis(self, monkeypatch):
        """The acceptance check: a cache hit runs no analysis pass."""
        service = CompileService()
        compiled = service.compile(kernels.WAVEFRONT, params={"n": 6})

        def boom(*args, **kwargs):
            raise AssertionError("dependence analysis re-ran on a hit")

        monkeypatch.setattr(pipeline_mod, "flow_edges", boom)
        again = service.compile(kernels.WAVEFRONT, params={"n": 6})
        assert again is compiled
        assert service.stats()["requests"]["hits"] == 1

    def test_cached_result_equals_uncached(self):
        service = CompileService()
        service.compile(kernels.WAVEFRONT, params={"n": 6})
        cached = service.compile(kernels.WAVEFRONT, params={"n": 6})
        uncached = repro.compile(kernels.WAVEFRONT, params={"n": 6})
        assert cached.source == uncached.source
        assert (cached({"n": 6}).to_list()
                == uncached({"n": 6}).to_list())

    def test_renamed_source_hits_same_entry(self, counting_pipeline):
        service = CompileService()
        service.compile(
            "letrec* a = array (1,n) [ i := i*i | i <- [1..n] ] in a",
            params={"n": 4},
        )
        service.compile(
            "letrec* sq = array (1,n) [ k := k*k | k <- [1..n] ] in sq",
            params={"n": 4},
        )
        assert counting_pipeline["count"] == 1

    def test_lru_eviction_shows_in_stats(self, counting_pipeline):
        service = CompileService(capacity=1)
        service.compile(kernels.SQUARES, params={"n": 4})
        service.compile(kernels.SQUARES, params={"n": 5})
        service.compile(kernels.SQUARES, params={"n": 4})  # evicted
        assert counting_pipeline["count"] == 3
        assert service.stats()["store"]["memory"]["evictions"] == 2

    def test_errors_are_counted_and_propagate(self):
        service = CompileService()
        with pytest.raises(CompileError):
            service.compile(kernels.SQUARES, params={"n": 4},
                            force_strategy="bogus")
        assert service.stats()["requests"]["errors"] == 1

    def test_invalidate_forces_recompile(self, counting_pipeline):
        service = CompileService()
        service.compile(kernels.SQUARES, params={"n": 4})
        assert service.invalidate(kernels.SQUARES,
                                  params={"n": 4}) is True
        service.compile(kernels.SQUARES, params={"n": 4})
        assert counting_pipeline["count"] == 2

    def test_salt_separates_services(self, tmp_path, counting_pipeline):
        first = CompileService(disk_dir=tmp_path, salt="v1")
        first.compile(kernels.SQUARES, params={"n": 4})
        bumped = CompileService(disk_dir=tmp_path, salt="v2")
        bumped.compile(kernels.SQUARES, params={"n": 4})
        assert counting_pipeline["count"] == 2
        assert bumped.stats()["requests"]["disk_hits"] == 0

    def test_disk_tier_survives_service_restart(self, tmp_path,
                                                counting_pipeline):
        CompileService(disk_dir=tmp_path).compile(
            kernels.WAVEFRONT, params={"n": 6}
        )
        reborn = CompileService(disk_dir=tmp_path)
        compiled = reborn.compile(kernels.WAVEFRONT, params={"n": 6})
        assert counting_pipeline["count"] == 1
        assert reborn.stats()["requests"]["disk_hits"] == 1
        assert compiled({"n": 6}).to_list()
        assert "disk tier" in reborn.summary()


class TestBatch:
    def test_results_in_request_order(self):
        service = CompileService()
        results = service.compile_batch([
            CompileRequest(kernels.SQUARES, {"n": 3}),
            (kernels.WAVEFRONT, {"n": 4}),
            {"src": kernels.SQUARES, "params": {"n": 5}},
        ])
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)
        assert results[1].compiled({"n": 4}).at((4, 4)) == 63

    def test_bad_entry_does_not_kill_batch(self):
        service = CompileService()
        results = service.compile_batch([
            CompileRequest(kernels.SQUARES, {"n": 3}),
            CompileRequest("letrec* broken = array", {"n": 3}),
            CompileRequest(kernels.SQUARES, {"n": 4}),
        ])
        assert [r.ok for r in results] == [True, False, True]
        assert isinstance(results[1], BatchResult)
        assert results[1].error is not None
        assert results[1].compiled is None

    def test_duplicate_requests_compile_once(self, counting_pipeline):
        counting_pipeline["delay"] = 0.05  # force overlap
        service = CompileService()
        results = service.compile_batch(
            [CompileRequest(kernels.WAVEFRONT, {"n": 6})] * 8,
            max_workers=8,
        )
        assert all(r.ok for r in results)
        assert len({id(r.compiled) for r in results}) == 1
        assert counting_pipeline["count"] == 1
        stats = service.stats()["requests"]
        assert stats["misses"] == 1
        assert stats["hits"] + stats["coalesced"] == 7
        assert stats["batch_requests"] == 8

    def test_concurrent_compile_calls_dedup(self, counting_pipeline):
        counting_pipeline["delay"] = 0.05
        service = CompileService()
        outputs = []

        def worker():
            outputs.append(
                service.compile(kernels.WAVEFRONT, params={"n": 6})
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counting_pipeline["count"] == 1
        assert len({id(c) for c in outputs}) == 1

    def test_empty_batch(self):
        assert CompileService().compile_batch([]) == []

    def test_warmup_summary(self, counting_pipeline):
        service = CompileService()
        service.compile(kernels.SQUARES, params={"n": 3})
        summary = service.warmup([
            CompileRequest(kernels.SQUARES, {"n": 3}),   # cached
            CompileRequest(kernels.WAVEFRONT, {"n": 4}),  # fresh
            CompileRequest("letrec* nope = array", None),  # error
        ])
        assert summary == {"total": 3, "compiled": 1, "cached": 1,
                           "errors": 1}


class TestPipelineWiring:
    def test_cache_argument_uses_service(self, counting_pipeline):
        service = CompileService()
        repro.compile(kernels.SQUARES, params={"n": 4}, cache=service)
        repro.compile(kernels.SQUARES, params={"n": 4}, cache=service)
        assert counting_pipeline["count"] == 1
        assert service.stats()["requests"]["hits"] == 1

    def test_cache_path_builds_disk_service(self, tmp_path):
        compiled = repro.compile(kernels.SQUARES, params={"n": 4},
                                 cache=str(tmp_path))
        assert compiled({"n": 4}).to_list() == [1, 4, 9, 16]
        assert any(tmp_path.glob("*/*.pkl"))

    def test_cache_true_uses_shared_default(self):
        assert resolve_cache(True) is default_service()

    def test_cache_off_is_pure_pipeline(self, counting_pipeline):
        # Through the patched module so invocations are observable.
        pipeline_mod.compile(kernels.SQUARES, params={"n": 4})
        pipeline_mod.compile(kernels.SQUARES, params={"n": 4})
        assert counting_pipeline["count"] == 2

    def test_bogus_cache_rejected(self):
        with pytest.raises(TypeError):
            repro.compile(kernels.SQUARES, params={"n": 4}, cache=42)


class TestMetricsRendering:
    def test_stats_are_plain_data(self):
        import json

        service = CompileService()
        service.compile(kernels.SQUARES, params={"n": 4})
        service.compile(kernels.SQUARES, params={"n": 4})
        json.dumps(service.stats())  # must not raise

    def test_summary_mentions_key_numbers(self):
        service = CompileService()
        service.compile(kernels.SQUARES, params={"n": 4})
        service.compile(kernels.SQUARES, params={"n": 4})
        text = service.summary()
        assert "hits: 1" in text
        assert "misses: 1" in text
        assert "memory tier" in text
        assert "compile wall time" in text

    def test_pass_timings_aggregated(self):
        service = CompileService()
        service.compile(kernels.WAVEFRONT, params={"n": 6})
        passes = service.stats()["requests"]["passes"]
        assert "dependence" in passes
        assert passes["dependence"]["count"] == 1
