"""The two-tier store: LRU order, disk round-trips, corruption."""

import os
import pickle

import pytest

from repro import compile_array, kernels
from repro.service import DiskStore, MemoryLRU, TieredStore
from repro.service.store import FORMAT_VERSION


@pytest.fixture(scope="module")
def compiled():
    return compile_array(kernels.SQUARES, params={"n": 5})


class TestMemoryLRU:
    def test_get_put_roundtrip(self, compiled):
        lru = MemoryLRU(capacity=2)
        lru.put("k1", compiled)
        assert lru.get("k1") is compiled
        assert lru.get("missing") is None

    def test_eviction_order_is_least_recently_used(self, compiled):
        lru = MemoryLRU(capacity=2)
        lru.put("k1", compiled)
        lru.put("k2", compiled)
        assert lru.get("k1") is compiled  # refresh k1; k2 is now LRU
        lru.put("k3", compiled)
        assert lru.get("k2") is None
        assert lru.get("k1") is compiled
        assert lru.get("k3") is compiled
        assert lru.evictions == 1
        assert lru.keys() == ["k1", "k3"]

    def test_reput_refreshes_not_duplicates(self, compiled):
        lru = MemoryLRU(capacity=2)
        lru.put("k1", compiled)
        lru.put("k1", compiled)
        assert len(lru) == 1
        assert lru.evictions == 0

    def test_invalidate_and_clear(self, compiled):
        lru = MemoryLRU(capacity=4)
        lru.put("k1", compiled)
        assert lru.invalidate("k1") is True
        assert lru.invalidate("k1") is False
        lru.put("k2", compiled)
        lru.clear()
        assert len(lru) == 0

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            MemoryLRU(capacity=0)


class TestDiskStore:
    def test_roundtrip_compiled_comp(self, tmp_path, compiled):
        store = DiskStore(tmp_path)
        assert store.put("f" * 64, compiled) is True
        loaded = store.get("f" * 64)
        assert loaded is not None
        assert loaded.source == compiled.source
        assert loaded.report.summary() == compiled.report.summary()
        # The reloaded artifact really runs.
        assert loaded({"n": 5}).to_list() == [1, 4, 9, 16, 25]

    def test_missing_entry_is_none(self, tmp_path):
        assert DiskStore(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path,
                                                 compiled):
        store = DiskStore(tmp_path)
        key = "a" * 64
        store.put(key, compiled)
        path = store._path(key)
        path.write_bytes(b"not a pickle at all")
        assert store.get(key) is None
        assert store.read_errors == 1
        assert not path.exists()

    def test_truncated_pickle_is_a_miss(self, tmp_path, compiled):
        store = DiskStore(tmp_path)
        key = "b" * 64
        store.put(key, compiled)
        path = store._path(key)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(key) is None

    def test_salt_mismatch_is_a_miss(self, tmp_path, compiled):
        old = DiskStore(tmp_path, salt="pipeline/old")
        key = "c" * 64
        old.put(key, compiled)
        fresh = DiskStore(tmp_path, salt="pipeline/new")
        assert fresh.get(key) is None
        # The stale file was dropped, so a re-put serves the new salt.
        fresh.put(key, compiled)
        assert fresh.get(key) is not None

    def test_wrong_format_version_is_a_miss(self, tmp_path, compiled):
        store = DiskStore(tmp_path)
        key = "d" * 64
        store.put(key, compiled)
        path = store._path(key)
        payload = pickle.loads(path.read_bytes())
        payload["format"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert store.get(key) is None

    def test_atomic_write_leaves_no_temp_droppings(self, tmp_path,
                                                   compiled):
        store = DiskStore(tmp_path)
        store.put("e" * 64, compiled)
        leftovers = [
            name for _, _, files in os.walk(tmp_path)
            for name in files if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_entries_and_clear(self, tmp_path, compiled):
        store = DiskStore(tmp_path)
        store.put("1" * 64, compiled)
        store.put("2" * 64, compiled)
        assert len(store) == 2
        assert all(size > 0 for _, size in store.entries())
        assert store.clear() == 2
        assert len(store) == 0

    def test_unwritable_root_is_best_effort(self, compiled):
        store = DiskStore("/proc/definitely/not/writable")
        assert store.put("9" * 64, compiled) is False
        assert store.write_errors == 1


class TestTieredStore:
    def test_disk_hit_promotes_to_memory(self, tmp_path, compiled):
        seeder = DiskStore(tmp_path)
        key = "a1" + "0" * 62
        seeder.put(key, compiled)
        tiered = TieredStore(MemoryLRU(4), DiskStore(tmp_path))
        loaded, tier = tiered.get(key)
        assert tier == "disk" and loaded is not None
        again, tier = tiered.get(key)
        assert tier == "memory" and again is loaded

    def test_put_reaches_both_tiers(self, tmp_path, compiled):
        tiered = TieredStore(MemoryLRU(4), DiskStore(tmp_path))
        key = "b2" + "0" * 62
        tiered.put(key, compiled)
        assert tiered.memory.get(key) is compiled
        assert tiered.disk.get(key) is not None

    def test_memory_only_configuration(self, compiled):
        tiered = TieredStore(MemoryLRU(4))
        tiered.put("k", compiled)
        assert tiered.get("k") == (compiled, "memory")
        assert tiered.get("missing") == (None, None)

    def test_invalidate_both_tiers(self, tmp_path, compiled):
        tiered = TieredStore(MemoryLRU(4), DiskStore(tmp_path))
        key = "c3" + "0" * 62
        tiered.put(key, compiled)
        assert tiered.invalidate(key) is True
        assert tiered.get(key) == (None, None)
