#!/usr/bin/env python3
"""Tour of the compiler's analyses on the paper's §5 and §8 examples.

For each example this prints the dependence graph (paper notation), the
schedule the §8 algorithms produce, and — where interesting — the
generated Python.  It ends with the paper's unschedulable cycle to show
the thunk fallback firing.

Run:  python examples/compiler_explorer.py
"""

import repro
from repro import analyze
from repro.kernels import (
    ABC_ACYCLIC,
    BACKWARD_RECURRENCE,
    CYCLIC_FALLBACK,
    EXAMPLE2,
    STRIDE3_SCHEMATIC,
)
from repro.report import render_edges, render_schedule


def show(title, src, params=None, show_code=False):
    print("=" * 70)
    print(title)
    print("=" * 70)
    print(src.strip())
    print()
    report = analyze(src, params)
    print("dependence edges:")
    print("  " + render_edges(report.edges).replace("\n", "\n  ") or "  none")
    print("schedule:")
    print("  " + render_schedule(report.schedule).replace("\n", "\n  "))
    print(f"collisions: {report.collision.status}; "
          f"empties: {report.empties.status}; "
          f"schedulable: {report.schedule.ok}")
    if show_code and report.schedule.ok:
        compiled = repro.compile(src, params=params)
        print("\ngenerated code:")
        body = compiled.source.split("def _build(_env):")[1]
        print("def _build(_env):" + body)
    print()


def main():
    show(
        "Paper §5, example 1 — three stride-3 clauses, one loop\n"
        "expected: 1 -> 2 (<), 1 -> 3 (=); forward loop, clause 1 "
        "before 3",
        STRIDE3_SCHEMATIC,
        show_code=True,
    )
    show(
        "Paper §5, example 2 — nested loops\n"
        "expected: 2 -> 1 (=,>), 1 -> 2 (<,>), 2 -> 3 (<); i forward, "
        "j backward",
        EXAMPLE2,
    )
    show(
        "Paper §8.1.2 — acyclic A->B(<), B->C(>), A->C(=)\n"
        "expected: two passes (A,B forward; then C)",
        ABC_ACYCLIC,
    )
    show(
        "A recurrence whose dependences force a backward loop",
        BACKWARD_RECURRENCE,
        params={"n": 10},
    )
    show(
        "Paper §8.1.2 — the unschedulable cycle A->B(<), B->A(>)\n"
        "expected: thunk fallback",
        CYCLIC_FALLBACK,
    )
    compiled = repro.compile(CYCLIC_FALLBACK)
    print(f"fallback compiled with strategy: {compiled.report.strategy}")
    result = compiled({})
    print(f"...and still computes correct values: {result.to_list()[:6]}...")


if __name__ == "__main__":
    main()
