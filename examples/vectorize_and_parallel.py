#!/usr/bin/env python3
"""The §10 extensions: vectorization, interchange, wavefront execution.

The paper's final section sketches how the same dependence information
drives vectorization and parallelization.  This example shows all
four implemented extensions:

1. dependence-free innermost loops compiled to numpy slices;
2. loop interchange moving a dependence-free loop innermost;
3. hyperplane (wavefront) parallelism profiles for nests where every
   loop carries a dependence;
4. the parallel backend *executing* those profiles: anti-diagonal
   slice sweeps for the carried nest, whole-dimension slices for the
   dependence-free borders, with bit-identical results.

Run:  python examples/vectorize_and_parallel.py
"""

import time

import repro
from repro import CodegenOptions, FlatArray, analyze
from repro.kernels import SOR_MONOLITHIC, WAVEFRONT, mesh_cells

N = 60_000

SAXPY = """
letrec y = array (1,n)
  [ i := a0 * x!i + y0!i | i <- [1..n] ]
in y
"""

COLUMN_RECURRENCE = """
letrec a = array ((1,1),(m,m))
  ([ (i,1) := 0.5 * fromIntegral i | i <- [1..m] ] ++
   [ (i,j) := a!(i,j-1) + 1.0 | i <- [1..m], j <- [2..m] ])
in a
"""


def timed(compiled, env):
    start = time.perf_counter()
    result = compiled(env)
    return result, time.perf_counter() - start


def main():
    # ------------------------------------------------------------------
    # 1. Vectorization of a dependence-free loop (SAXPY).
    env = {
        "n": N,
        "a0": 2.5,
        "x": FlatArray.from_list((1, N), [float(k) for k in range(N)]),
        "y0": FlatArray.from_list((1, N), [1.0] * N),
    }
    scalar = repro.compile(SAXPY, params={"n": N})
    vector = repro.compile(SAXPY, params={"n": N},
                           options=CodegenOptions(vectorize=True))
    r1, t_scalar = timed(scalar, env)
    r2, t_vector = timed(vector, env)
    assert r1.to_list() == r2.to_list()
    print(f"SAXPY n={N}: scalar {t_scalar*1000:.1f} ms, "
          f"vectorized {t_vector*1000:.1f} ms "
          f"({t_scalar/t_vector:.1f}x)")

    # ------------------------------------------------------------------
    # 2. Interchange exposes a vectorizable loop.
    m = 300
    plain = repro.compile(COLUMN_RECURRENCE, params={"m": m})
    swapped = repro.compile(COLUMN_RECURRENCE, params={"m": m},
                            options=CodegenOptions(vectorize=True))
    print("\nColumn recurrence (inner loop carries the dependence):")
    for note in swapped.report.notes:
        print(f"  {note}")
    r3, t_plain = timed(plain, {"m": m})
    r4, t_swapped = timed(swapped, {"m": m})
    assert r3.to_list() == r4.to_list()
    print(f"  scalar {t_plain*1000:.1f} ms, interchanged+vectorized "
          f"{t_swapped*1000:.1f} ms ({t_plain/t_swapped:.1f}x)")

    # ------------------------------------------------------------------
    # 3. Wavefront parallelism for the fully-carried nest.
    report = analyze(WAVEFRONT, {"n": 100})
    print("\nWavefront recurrence parallelism profile:")
    for profile in report.parallelism:
        if profile.fully_parallel:
            print(f"  {profile.clause.label}: fully parallel "
                  f"({profile.work} instances in 1 step)")
        elif profile.hyperplane:
            print(f"  {profile.clause.label}: hyperplane "
                  f"h={profile.hyperplane}, critical path "
                  f"{profile.steps} of {profile.work} instances "
                  f"(speedup bound {profile.speedup_bound:.1f}x)")

    # ------------------------------------------------------------------
    # 4. Executing the wavefront: the parallel backend on SOR.
    size = 256
    mesh = FlatArray.from_list(((1, 1), (size, size)), mesh_cells(size))
    env = {"u": mesh, "m": size, "omega": 1.5}
    seq = repro.compile(SOR_MONOLITHIC, params={"m": size})
    par = repro.compile(SOR_MONOLITHIC, params={"m": size},
                        options=CodegenOptions(parallel=True))
    print(f"\nParallel backend decisions (SOR, m={size}):")
    for line in par.report.parallel:
        print(f"  {line}")
    r5, t_seq = timed(seq, env)
    r6, t_par = timed(par, env)
    assert r5.to_list() == r6.to_list()  # bit-identical, not approx
    print(f"  scalar schedule {t_seq*1000:.1f} ms, wavefront backend "
          f"{t_par*1000:.1f} ms ({t_seq/t_par:.1f}x), bit-identical")


if __name__ == "__main__":
    main()
