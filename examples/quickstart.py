#!/usr/bin/env python3
"""Quickstart: compile the paper's wavefront recurrence.

This walks the whole pipeline on the running example of Anderson &
Hudak (PLDI 1990) §3: a recursively defined array whose interior
elements depend on their north, west, and north-west neighbours.

Run:  python examples/quickstart.py
"""

import time

import repro
from repro import analyze, evaluate
from repro.kernels import WAVEFRONT, ref_wavefront
from repro.report import render_edges, render_schedule

N = 150


def main():
    print("Source (the paper's own notation):")
    print(WAVEFRONT)

    # ------------------------------------------------------------------
    # 1. What the compiler discovers.
    report = analyze(WAVEFRONT, {"n": N})
    print("Dependence graph (clause -> clause, direction vectors):")
    print(render_edges(report.edges))
    print()
    print("Static schedule:")
    print(render_schedule(report.schedule))
    print()
    print(f"Write collisions: {report.collision.status}")
    print(f"Empties:          {report.empties.status}")
    print(f"Vectorizable inner loops: {report.vectorizable}")
    print()

    # ------------------------------------------------------------------
    # 2. Compile and run — thunklessly, all checks elided.
    compiled = repro.compile(WAVEFRONT, params={"n": N})
    start = time.perf_counter()
    result = compiled({"n": N})
    thunkless_time = time.perf_counter() - start
    print(f"Compiled (strategy={compiled.report.strategy}) "
          f"built {N}x{N} in {thunkless_time * 1000:.1f} ms")

    # ------------------------------------------------------------------
    # 3. Cross-check against the hand-coded loops and (on a smaller
    #    size) the lazy reference interpreter.
    reference = ref_wavefront(N)
    flat = [reference[i][j]
            for i in range(1, N + 1) for j in range(1, N + 1)]
    assert result.to_list() == flat
    print("Matches the hand-scheduled Fortran-style loops.")

    small = 12
    oracle = evaluate(WAVEFRONT, bindings={"n": small}, deep=False)
    small_compiled = repro.compile(WAVEFRONT, params={"n": small})
    assert small_compiled({"n": small}).to_list() == [
        oracle.at(s) for s in oracle.bounds.range()
    ]
    print("Matches the lazy (thunked) reference interpreter.")

    # ------------------------------------------------------------------
    # 4. The cost of not scheduling: thunked code for the same array.
    thunked = repro.compile(WAVEFRONT, params={"n": N},
                            force_strategy="thunked")
    start = time.perf_counter()
    thunked({"n": N})
    thunked_time = time.perf_counter() - start
    print(f"Thunked fallback: {thunked_time * 1000:.1f} ms "
          f"({thunked_time / thunkless_time:.1f}x slower)")


if __name__ == "__main__":
    main()
