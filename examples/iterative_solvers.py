#!/usr/bin/env python3
"""Iterative PDE solvers compiled for in-place execution (paper §9).

Solves the Laplace equation on a square mesh with fixed boundary
values, comparing three compiled update kernels:

* **Jacobi** — reads only the old mesh: anti-dependence self-cycles in
  both loop directions, broken by node-splitting (a previous-row vector
  and a previous-element scalar);
* **Gauss-Seidel** — the paper's wavefront: new values north/west, old
  values south/east; forward/forward loops need no temporaries at all;
* **SOR** — Gauss-Seidel with over-relaxation (Livermore Kernel 23's
  structure).

All three run in the mesh's own storage.  The run prints iteration
counts to convergence and the exact copy traffic each kernel's
temporaries cost.

Run:  python examples/iterative_solvers.py
"""

import math

import repro
from repro import FlatArray
from repro.kernels import GAUSS_SEIDEL, JACOBI, SOR
from repro.runtime import incremental

M = 24          # mesh size (M x M, boundary fixed)
TOLERANCE = 1e-6
MAX_SWEEPS = 8000


def make_mesh():
    """Boundary: top edge held at 100, others at 0; interior 0."""
    cells = []
    for i in range(1, M + 1):
        for j in range(1, M + 1):
            cells.append(100.0 if i == 1 else 0.0)
    return FlatArray.from_list(((1, 1), (M, M)), cells)


def solve(kernel_src, label, extra_env=None):
    compiled = repro.compile(kernel_src, old_array="u", params={"m": M})
    mesh = make_mesh()
    env = {"u": mesh}
    env.update(extra_env or {})
    incremental.STATS.reset()
    sweeps = 0
    while sweeps < MAX_SWEEPS:
        before = list(mesh.cells)
        compiled(env)
        sweeps += 1
        delta = max(
            abs(a - b) for a, b in zip(before, mesh.cells)
        )
        if delta < TOLERANCE:
            break
    copies = incremental.STATS.cells_copied
    print(
        f"{label:14s} converged in {sweeps:5d} sweeps | "
        f"buffer copies per sweep: {copies / sweeps:8.1f} | "
        f"strategy: {compiled.report.strategy}"
    )
    return mesh, sweeps


def main():
    print(f"Laplace equation on a {M}x{M} mesh, top edge = 100\n")
    jacobi_mesh, jacobi_sweeps = solve(JACOBI, "Jacobi")
    gs_mesh, gs_sweeps = solve(GAUSS_SEIDEL, "Gauss-Seidel")
    omega = 2.0 / (1.0 + math.sin(math.pi / (M - 1)))
    sor_mesh, sor_sweeps = solve(SOR, f"SOR w={omega:.2f}",
                                 {"omega": omega})

    print()
    print("Classic convergence ordering (SOR < GS < Jacobi sweeps):")
    print(f"  {sor_sweeps} < {gs_sweeps} < {jacobi_sweeps}:",
          sor_sweeps < gs_sweeps < jacobi_sweeps)

    # All three converge to the same harmonic function.
    worst = max(
        abs(a - b) for a, b in zip(jacobi_mesh.cells, sor_mesh.cells)
    )
    print(f"  max |Jacobi - SOR| at fixed point: {worst:.2e}")

    center = jacobi_mesh.at((M // 2, M // 2))
    print(f"  potential at mesh centre: {center:.4f}")


if __name__ == "__main__":
    main()
