#!/usr/bin/env python3
"""Gaussian elimination from compiled LINPACK-style kernels (paper §9).

The paper motivates in-place update with LINPACK fragments: swapping
matrix rows (partial pivoting), scaling a row, and row SAXPY.  Here all
three are compiled from array-comprehension sources into in-place loop
nests, then composed into an LU solver with partial pivoting — the
whole factorization runs in the matrix's own storage, and the only
copies are the swap temporaries (exactly one per moved element, as in
hand-written Fortran).

Run:  python examples/linpack_kernels.py
"""

import random

import repro
from repro import FlatArray
from repro.runtime import incremental

N = 12

# Eliminate row i below pivot row k with multiplier taken from the
# matrix itself (classic DAXPY update of the trailing row segment).
ELIMINATE = """
array ((1,1),(m,m))
  [* (i,j) := a!(i,j) - s * a!(k,j) | j <- [p..m] *]
"""

SWAP_ROWS = """
array ((1,1),(m,m))
  [* [ (i,j) := a!(k,j), (k,j) := a!(i,j) ] | j <- [1..m] *]
"""


def lu_solve(matrix_rows, rhs):
    """Solve A x = b by compiled in-place LU with partial pivoting."""
    a = FlatArray.from_list(
        ((1, 1), (N, N)), [v for row in matrix_rows for v in row]
    )
    b = list(rhs)

    swaps = {}
    eliminations = {}
    for k in range(1, N + 1):
        # Pivot search (plain Python: it's a reduction over a column).
        pivot = max(range(k, N + 1), key=lambda r: abs(a.at((r, k))))
        if pivot != k:
            key = (k, pivot)
            if key not in swaps:
                swaps[key] = repro.compile(
                    SWAP_ROWS, old_array="a", params={"m": N, "i": k, "k": pivot}
                )
            swaps[key]({"a": a})
            b[k - 1], b[pivot - 1] = b[pivot - 1], b[k - 1]
        for i in range(k + 1, N + 1):
            s = a.at((i, k)) / a.at((k, k))
            key = (i, k)
            if key not in eliminations:
                eliminations[key] = repro.compile(
                    ELIMINATE, old_array="a",
                    params={"m": N, "i": i, "k": k, "p": k},
                )
            eliminations[key]({"a": a, "s": s})
            b[i - 1] -= s * b[k - 1]

    # Back substitution.
    x = [0.0] * N
    for i in range(N, 0, -1):
        total = b[i - 1] - sum(
            a.at((i, j)) * x[j - 1] for j in range(i + 1, N + 1)
        )
        x[i - 1] = total / a.at((i, i))
    return x


def main():
    rng = random.Random(42)
    matrix = [
        [rng.uniform(-1, 1) for _ in range(N)] for _ in range(N)
    ]
    true_x = [rng.uniform(-5, 5) for _ in range(N)]
    rhs = [
        sum(matrix[r][c] * true_x[c] for c in range(N)) for r in range(N)
    ]

    incremental.STATS.reset()
    solved = lu_solve(matrix, rhs)
    copies = incremental.STATS.cells_copied

    error = max(abs(g - w) for g, w in zip(solved, true_x))
    print(f"LU solve of a {N}x{N} system via compiled in-place kernels")
    print(f"  max |x - x_true| = {error:.2e}")
    print(f"  total buffer copies during factorization: {copies}")
    print("  (every copy is a pivot-swap temporary — the eliminations")
    print("   and scalings compile to zero-copy in-place loops)")
    assert error < 1e-8


if __name__ == "__main__":
    main()
